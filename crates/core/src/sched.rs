//! Temporal resource allocation: the DaCapo spatiotemporal algorithm
//! (Algorithm 1) and the baseline scheduling policies it is compared against.
//!
//! A scheduler owns the T-SA (DaCapo) or the GPU time left over after
//! inference (baselines) and decides, phase by phase, whether to spend it on
//! **labeling** new samples or **retraining** the student, and whether the
//! sample buffer should be reset because data drift was detected.

use crate::config::Hyperparams;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The scheduling policies evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// DaCapo's spatiotemporal allocation (Algorithm 1): alternate retraining
    /// and labeling, detect drift by comparing validation accuracy against
    /// fresh-label accuracy, and respond by resetting the buffer and labeling
    /// 4× more.
    DaCapoSpatiotemporal,
    /// DaCapo-Spatial: the same spatial partition but a fixed-window temporal
    /// schedule with no drift response.
    DaCapoSpatial,
    /// Ekya: fixed (long) windows; each window spends part of its budget on a
    /// profiling pass before retraining with the selected configuration.
    Ekya,
    /// EOMU: short monitoring windows that label a little continuously and
    /// trigger retraining only when observed accuracy degrades.
    Eomu,
    /// No adaptation at all: the pre-trained student serves every frame and
    /// the labeling/retraining resources stay idle. Used by the Figure 2
    /// motivation study as the "Student" (non-continuous-learning) case.
    NoAdaptation,
}

impl SchedulerKind {
    /// All continuous-learning policies in the order Figure 9 lists the
    /// systems (the non-adaptive baseline is excluded).
    pub const ALL: [SchedulerKind; 4] = [
        SchedulerKind::Ekya,
        SchedulerKind::Eomu,
        SchedulerKind::DaCapoSpatial,
        SchedulerKind::DaCapoSpatiotemporal,
    ];

    /// Instantiates the policy with the given hyperparameters.
    #[must_use]
    pub fn create(self, hyper: &Hyperparams) -> Box<dyn Scheduler> {
        match self {
            SchedulerKind::DaCapoSpatiotemporal => Box::new(Spatiotemporal::new(hyper)),
            SchedulerKind::DaCapoSpatial => Box::new(SpatialOnly::new(hyper)),
            SchedulerKind::Ekya => Box::new(Ekya::new(hyper)),
            SchedulerKind::Eomu => Box::new(Eomu::new(hyper)),
            SchedulerKind::NoAdaptation => Box::new(NoAdaptation),
        }
    }

    /// Whether this policy reacts to detected data drift.
    #[must_use]
    pub fn drift_aware(self) -> bool {
        matches!(self, SchedulerKind::DaCapoSpatiotemporal | SchedulerKind::Eomu)
    }
}

impl fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedulerKind::DaCapoSpatiotemporal => write!(f, "DaCapo-Spatiotemporal"),
            SchedulerKind::DaCapoSpatial => write!(f, "DaCapo-Spatial"),
            SchedulerKind::Ekya => write!(f, "Ekya"),
            SchedulerKind::Eomu => write!(f, "EOMU"),
            SchedulerKind::NoAdaptation => write!(f, "No-Adaptation"),
        }
    }
}

/// The non-adaptive baseline: never labels, never retrains.
#[derive(Debug)]
struct NoAdaptation;

impl Scheduler for NoAdaptation {
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::NoAdaptation
    }

    fn next_action(&mut self, _ctx: &SchedulerContext) -> Action {
        Action::Wait { seconds: 30.0 }
    }
}

/// What the simulator tells the scheduler before each decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedulerContext {
    /// Current simulation time in seconds.
    pub now_s: f64,
    /// Number of samples currently buffered.
    pub buffer_len: usize,
    /// Buffer capacity.
    pub buffer_capacity: usize,
    /// Validation accuracy (`acc_v`) measured after the most recent
    /// retraining phase, if any.
    pub last_validation_accuracy: Option<f64>,
    /// Student accuracy (`acc_l`) on the most recently labeled batch, if any.
    pub last_labeling_accuracy: Option<f64>,
}

/// One temporal-allocation decision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Action {
    /// Label `samples` freshly sampled frames with the teacher. When
    /// `reset_buffer` is set, the sample buffer is cleared first (the drift
    /// response of Algorithm 1, lines 12–13).
    Label {
        /// Number of samples to label.
        samples: usize,
        /// Whether to clear the buffer before adding the new samples.
        reset_buffer: bool,
    },
    /// Draw `samples` from the buffer and retrain for `epochs` epochs.
    Retrain {
        /// Number of buffered samples to draw.
        samples: usize,
        /// Number of epochs over the drawn samples.
        epochs: usize,
    },
    /// Leave the retraining/labeling resources idle for `seconds` (fixed
    /// -window baselines waiting for their next window, or profiling
    /// overhead).
    Wait {
        /// Idle duration in seconds.
        seconds: f64,
    },
}

/// A temporal resource-allocation policy.
pub trait Scheduler {
    /// The policy's kind (used for reporting).
    fn kind(&self) -> SchedulerKind;

    /// Decides what the T-SA (or GPU leftover) does next.
    fn next_action(&mut self, ctx: &SchedulerContext) -> Action;
}

/// Detects drift per Algorithm 1 line 11: drift iff `acc_l - acc_v < V_thr`.
fn drift_detected(ctx: &SchedulerContext, threshold: f64) -> bool {
    match (ctx.last_labeling_accuracy, ctx.last_validation_accuracy) {
        (Some(acc_l), Some(acc_v)) => acc_l - acc_v < threshold,
        _ => false,
    }
}

// --------------------------------------------------------------------------
// DaCapo-Spatiotemporal (Algorithm 1)
// --------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq)]
enum CyclePoint {
    Retrain,
    Label,
    DriftCheck,
}

/// The paper's Algorithm 1.
#[derive(Debug)]
struct Spatiotemporal {
    hyper: Hyperparams,
    next: CyclePoint,
}

impl Spatiotemporal {
    fn new(hyper: &Hyperparams) -> Self {
        Self { hyper: *hyper, next: CyclePoint::Retrain }
    }
}

impl Scheduler for Spatiotemporal {
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::DaCapoSpatiotemporal
    }

    fn next_action(&mut self, ctx: &SchedulerContext) -> Action {
        loop {
            match self.next {
                CyclePoint::Retrain => {
                    // Retraining needs data; bootstrap by labeling until the
                    // buffer can supply a training and validation draw.
                    let needed = self.hyper.validation_samples + self.hyper.batch_size;
                    if ctx.buffer_len < needed {
                        return Action::Label { samples: self.hyper.label_samples, reset_buffer: false };
                    }
                    self.next = CyclePoint::Label;
                    return Action::Retrain {
                        samples: self.hyper.retrain_samples,
                        epochs: self.hyper.epochs,
                    };
                }
                CyclePoint::Label => {
                    self.next = CyclePoint::DriftCheck;
                    return Action::Label { samples: self.hyper.label_samples, reset_buffer: false };
                }
                CyclePoint::DriftCheck => {
                    self.next = CyclePoint::Retrain;
                    if drift_detected(ctx, self.hyper.drift_threshold) {
                        // Clear outdated samples and extend labeling so the
                        // buffer refills with the new distribution.
                        return Action::Label {
                            samples: self.hyper.drift_label_samples() - self.hyper.label_samples,
                            reset_buffer: true,
                        };
                    }
                    // No drift: fall through to the next retraining phase.
                }
            }
        }
    }
}

// --------------------------------------------------------------------------
// DaCapo-Spatial (fixed window, no drift response)
// --------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq)]
enum WindowStep {
    Label,
    Retrain,
    Idle,
}

/// Fixed-window variant: every window labels `N_l` samples and retrains once.
#[derive(Debug)]
struct SpatialOnly {
    hyper: Hyperparams,
    window_index: u64,
    step: WindowStep,
}

impl SpatialOnly {
    fn new(hyper: &Hyperparams) -> Self {
        Self { hyper: *hyper, window_index: 0, step: WindowStep::Label }
    }

    fn window_end(&self) -> f64 {
        (self.window_index + 1) as f64 * self.hyper.window_seconds
    }
}

impl Scheduler for SpatialOnly {
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::DaCapoSpatial
    }

    fn next_action(&mut self, ctx: &SchedulerContext) -> Action {
        // Move to the window that contains `now`.
        while ctx.now_s >= self.window_end() {
            self.window_index += 1;
            self.step = WindowStep::Label;
        }
        match self.step {
            WindowStep::Label => {
                self.step = WindowStep::Retrain;
                Action::Label { samples: self.hyper.label_samples, reset_buffer: false }
            }
            WindowStep::Retrain => {
                self.step = WindowStep::Idle;
                if ctx.buffer_len < self.hyper.batch_size {
                    Action::Wait { seconds: (self.window_end() - ctx.now_s).max(0.1) }
                } else {
                    Action::Retrain { samples: self.hyper.retrain_samples, epochs: self.hyper.epochs }
                }
            }
            WindowStep::Idle => Action::Wait { seconds: (self.window_end() - ctx.now_s).max(0.1) },
        }
    }
}

// --------------------------------------------------------------------------
// Ekya (long windows with a profiling pass)
// --------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq)]
enum EkyaStep {
    Profile,
    Label,
    Retrain,
    Idle,
}

/// Ekya-style scheduling: long windows; each window first spends a slice of
/// its retraining budget profiling candidate configurations (modelled as idle
/// time from the student's point of view), then labels and retrains once.
#[derive(Debug)]
struct Ekya {
    hyper: Hyperparams,
    window_seconds: f64,
    profile_fraction: f64,
    window_index: u64,
    step: EkyaStep,
}

impl Ekya {
    fn new(hyper: &Hyperparams) -> Self {
        Self {
            hyper: *hyper,
            // Ekya windows are long (its paper uses 200 s; we use twice the
            // DaCapo window so the relative sluggishness is preserved).
            window_seconds: hyper.window_seconds * 2.0,
            profile_fraction: 0.15,
            window_index: 0,
            step: EkyaStep::Profile,
        }
    }

    fn window_end(&self) -> f64 {
        (self.window_index + 1) as f64 * self.window_seconds
    }
}

impl Scheduler for Ekya {
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::Ekya
    }

    fn next_action(&mut self, ctx: &SchedulerContext) -> Action {
        while ctx.now_s >= self.window_end() {
            self.window_index += 1;
            self.step = EkyaStep::Profile;
        }
        match self.step {
            EkyaStep::Profile => {
                self.step = EkyaStep::Label;
                Action::Wait { seconds: self.window_seconds * self.profile_fraction }
            }
            EkyaStep::Label => {
                self.step = EkyaStep::Retrain;
                Action::Label { samples: self.hyper.label_samples, reset_buffer: false }
            }
            EkyaStep::Retrain => {
                self.step = EkyaStep::Idle;
                if ctx.buffer_len < self.hyper.batch_size {
                    Action::Wait { seconds: (self.window_end() - ctx.now_s).max(0.1) }
                } else {
                    Action::Retrain { samples: self.hyper.retrain_samples, epochs: self.hyper.epochs }
                }
            }
            EkyaStep::Idle => Action::Wait { seconds: (self.window_end() - ctx.now_s).max(0.1) },
        }
    }
}

// --------------------------------------------------------------------------
// EOMU (short monitoring windows, triggered retraining)
// --------------------------------------------------------------------------

/// EOMU-style scheduling: 10-second monitoring windows that label a small
/// batch each window and trigger retraining only when the freshly observed
/// accuracy degrades relative to the best recently seen.
///
/// Because the retraining must fit the short monitoring window, each
/// triggered retraining is a *shallow* pass (a single epoch over the drawn
/// samples) — the paper observes that EOMU's frequent retrainings "with
/// insufficient resources engender incomplete models".
#[derive(Debug)]
struct Eomu {
    hyper: Hyperparams,
    window_seconds: f64,
    trigger_margin: f64,
    best_recent_accuracy: Option<f64>,
    window_index: u64,
    labeled_this_window: bool,
    retrained_this_window: bool,
}

impl Eomu {
    fn new(hyper: &Hyperparams) -> Self {
        Self {
            hyper: *hyper,
            // The paper configures EOMU with 10-second windows.
            window_seconds: 10.0,
            trigger_margin: 0.05,
            best_recent_accuracy: None,
            window_index: 0,
            labeled_this_window: false,
            retrained_this_window: false,
        }
    }

    fn window_end(&self) -> f64 {
        (self.window_index + 1) as f64 * self.window_seconds
    }
}

impl Scheduler for Eomu {
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::Eomu
    }

    fn next_action(&mut self, ctx: &SchedulerContext) -> Action {
        while ctx.now_s >= self.window_end() {
            self.window_index += 1;
            self.labeled_this_window = false;
            self.retrained_this_window = false;
        }
        if !self.labeled_this_window {
            self.labeled_this_window = true;
            // Continuous monitoring labels a quarter of the usual quota.
            return Action::Label {
                samples: (self.hyper.label_samples / 4).max(self.hyper.batch_size),
                reset_buffer: false,
            };
        }
        if !self.retrained_this_window {
            self.retrained_this_window = true;
            let observed = ctx.last_labeling_accuracy;
            let degraded = match (observed, self.best_recent_accuracy) {
                (Some(now), Some(best)) => now < best - self.trigger_margin,
                (Some(_), None) => true, // no history yet: adapt eagerly
                _ => false,
            };
            if let Some(now) = observed {
                let best = self.best_recent_accuracy.unwrap_or(0.0);
                // Exponentially decay the best so long-gone highs do not keep
                // triggering retraining forever.
                self.best_recent_accuracy = Some((best * 0.95).max(now));
            }
            if degraded && ctx.buffer_len >= self.hyper.batch_size {
                // Shallow retraining that fits the short monitoring window.
                return Action::Retrain { samples: self.hyper.retrain_samples, epochs: 1 };
            }
        }
        Action::Wait { seconds: (self.window_end() - ctx.now_s).max(0.1) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(now: f64, buffer: usize, acc_v: Option<f64>, acc_l: Option<f64>) -> SchedulerContext {
        SchedulerContext {
            now_s: now,
            buffer_len: buffer,
            buffer_capacity: 512,
            last_validation_accuracy: acc_v,
            last_labeling_accuracy: acc_l,
        }
    }

    #[test]
    fn kinds_display_like_the_paper() {
        assert_eq!(SchedulerKind::DaCapoSpatiotemporal.to_string(), "DaCapo-Spatiotemporal");
        assert_eq!(SchedulerKind::Eomu.to_string(), "EOMU");
        assert!(SchedulerKind::DaCapoSpatiotemporal.drift_aware());
        assert!(!SchedulerKind::DaCapoSpatial.drift_aware());
        assert!(!SchedulerKind::Ekya.drift_aware());
        assert!(!SchedulerKind::NoAdaptation.drift_aware());
    }

    #[test]
    fn no_adaptation_only_ever_waits() {
        let hyper = Hyperparams::default();
        let mut sched = SchedulerKind::NoAdaptation.create(&hyper);
        for step in 0..10 {
            let action = sched.next_action(&ctx(step as f64 * 30.0, 500, Some(0.9), Some(0.1)));
            assert!(matches!(action, Action::Wait { .. }));
        }
    }

    #[test]
    fn spatiotemporal_bootstraps_with_labeling_when_buffer_is_empty() {
        let hyper = Hyperparams::default();
        let mut sched = SchedulerKind::DaCapoSpatiotemporal.create(&hyper);
        match sched.next_action(&ctx(0.0, 0, None, None)) {
            Action::Label { samples, reset_buffer } => {
                assert_eq!(samples, hyper.label_samples);
                assert!(!reset_buffer);
            }
            other => panic!("expected bootstrap labeling, got {other:?}"),
        }
    }

    #[test]
    fn spatiotemporal_alternates_retrain_and_label() {
        let hyper = Hyperparams::default();
        let mut sched = SchedulerKind::DaCapoSpatiotemporal.create(&hyper);
        let full = ctx(10.0, 400, Some(0.8), Some(0.82));
        let first = sched.next_action(&full);
        assert!(matches!(first, Action::Retrain { samples, epochs }
            if samples == hyper.retrain_samples && epochs == hyper.epochs));
        let second = sched.next_action(&full);
        assert!(matches!(second, Action::Label { reset_buffer: false, .. }));
        // No drift: the cycle returns to retraining.
        let third = sched.next_action(&full);
        assert!(matches!(third, Action::Retrain { .. }));
    }

    #[test]
    fn spatiotemporal_resets_buffer_and_extends_labeling_on_drift() {
        let hyper = Hyperparams::default();
        let mut sched = SchedulerKind::DaCapoSpatiotemporal.create(&hyper);
        let calm = ctx(10.0, 400, Some(0.8), Some(0.82));
        let _ = sched.next_action(&calm); // retrain
        let _ = sched.next_action(&calm); // label
        // Fresh labels score far below validation: drift.
        let drifted = ctx(20.0, 400, Some(0.8), Some(0.4));
        match sched.next_action(&drifted) {
            Action::Label { samples, reset_buffer } => {
                assert!(reset_buffer, "drift must clear the stale buffer");
                assert_eq!(samples, hyper.drift_label_samples() - hyper.label_samples);
            }
            other => panic!("expected extended labeling on drift, got {other:?}"),
        }
        // After the drift response the cycle resumes with retraining.
        let after = ctx(30.0, 300, Some(0.8), Some(0.75));
        assert!(matches!(sched.next_action(&after), Action::Retrain { .. }));
    }

    #[test]
    fn spatial_only_never_resets_the_buffer() {
        let hyper = Hyperparams::default();
        let mut sched = SchedulerKind::DaCapoSpatial.create(&hyper);
        // Strong drift signal, plenty of data: still no reset.
        for step in 0..50 {
            let action = sched.next_action(&ctx(step as f64 * 7.0, 400, Some(0.9), Some(0.2)));
            if let Action::Label { reset_buffer, .. } = action {
                assert!(!reset_buffer);
            }
        }
    }

    #[test]
    fn spatial_only_cycles_label_retrain_idle_per_window() {
        let hyper = Hyperparams::default();
        let mut sched = SchedulerKind::DaCapoSpatial.create(&hyper);
        let c = ctx(0.0, 400, None, None);
        assert!(matches!(sched.next_action(&c), Action::Label { .. }));
        assert!(matches!(sched.next_action(&ctx(5.0, 400, None, None)), Action::Retrain { .. }));
        assert!(matches!(sched.next_action(&ctx(20.0, 400, None, None)), Action::Wait { .. }));
        // Next window starts over with labeling.
        assert!(matches!(
            sched.next_action(&ctx(hyper.window_seconds + 1.0, 400, None, None)),
            Action::Label { .. }
        ));
    }

    #[test]
    fn ekya_spends_time_profiling_before_retraining() {
        let hyper = Hyperparams::default();
        let mut sched = SchedulerKind::Ekya.create(&hyper);
        let c = ctx(0.0, 400, None, None);
        match sched.next_action(&c) {
            Action::Wait { seconds } => assert!(seconds > 0.0, "profiling should consume time"),
            other => panic!("expected profiling wait, got {other:?}"),
        }
        assert!(matches!(sched.next_action(&ctx(20.0, 400, None, None)), Action::Label { .. }));
        assert!(matches!(sched.next_action(&ctx(25.0, 400, None, None)), Action::Retrain { .. }));
    }

    #[test]
    fn eomu_triggers_retraining_only_on_degradation() {
        let hyper = Hyperparams::default();
        let mut sched = SchedulerKind::Eomu.create(&hyper);
        // Window 0: label, then (no history) retrain eagerly.
        assert!(matches!(sched.next_action(&ctx(0.0, 400, None, None)), Action::Label { .. }));
        assert!(matches!(
            sched.next_action(&ctx(1.0, 400, None, Some(0.8))),
            Action::Retrain { .. }
        ));
        // Window 1: accuracy holds, so after labeling it only waits.
        assert!(matches!(sched.next_action(&ctx(10.5, 400, Some(0.8), Some(0.8))), Action::Label { .. }));
        assert!(matches!(sched.next_action(&ctx(11.0, 400, Some(0.8), Some(0.8))), Action::Wait { .. }));
        // Window 2: accuracy collapses, retraining triggers again.
        assert!(matches!(sched.next_action(&ctx(20.5, 400, Some(0.8), Some(0.5))), Action::Label { .. }));
        assert!(matches!(
            sched.next_action(&ctx(21.0, 400, Some(0.8), Some(0.5))),
            Action::Retrain { .. }
        ));
    }

    #[test]
    fn eomu_labels_less_per_window_than_dacapo() {
        let hyper = Hyperparams::default();
        let mut eomu = SchedulerKind::Eomu.create(&hyper);
        let mut dacapo = SchedulerKind::DaCapoSpatiotemporal.create(&hyper);
        let c = ctx(0.0, 0, None, None);
        let eomu_samples = match eomu.next_action(&c) {
            Action::Label { samples, .. } => samples,
            other => panic!("unexpected {other:?}"),
        };
        let dacapo_samples = match dacapo.next_action(&c) {
            Action::Label { samples, .. } => samples,
            other => panic!("unexpected {other:?}"),
        };
        assert!(eomu_samples < dacapo_samples);
    }
}
