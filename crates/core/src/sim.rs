//! The one-shot simulation façade and the collected run metrics.
//!
//! The actual execution engine lives in [`crate::session`]: a re-entrant
//! [`Session`](crate::Session) stepped event by event. [`ClSimulator`] is the
//! batch-style compatibility wrapper — it builds a session, steps it to
//! completion, and hands back the final [`SimResult`]. Code that wants
//! mid-run visibility (observers, multi-camera drivers, custom control
//! loops) should use [`Session`](crate::Session) or
//! [`Fleet`](crate::Fleet) directly.

use crate::config::SimConfig;
use crate::session::Session;
use crate::Result;
use dacapo_dnn::zoo::ModelPair;
use serde::{Deserialize, Serialize};

/// What a phase spent its time on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PhaseKind {
    /// Teacher labeling of freshly sampled frames.
    Label,
    /// Student retraining (plus its validation pass).
    Retrain,
    /// Idle retraining/labeling resources (window padding, profiling).
    Wait,
}

/// One executed phase of the temporal schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseRecord {
    /// Phase type.
    pub kind: PhaseKind,
    /// Start time in seconds.
    pub start_s: f64,
    /// Duration in seconds.
    pub duration_s: f64,
    /// Samples processed (labeled samples, or retraining sample·epochs).
    pub samples: usize,
    /// Whether this phase was a drift response (buffer reset + extended
    /// labeling).
    pub drift_response: bool,
}

/// The outcome of one simulated run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Platform + scheduler name, e.g. `"DaCapo (16x16 DPEs) / DaCapo-Spatiotemporal"`.
    pub system: String,
    /// Scenario name.
    pub scenario: String,
    /// Model pair evaluated.
    pub pair: ModelPair,
    /// Name of the scheduling policy used (a builtin kind's display name, or
    /// a registered custom policy's name).
    pub scheduler: String,
    /// `(time, accuracy)` samples along the run; accuracy already accounts
    /// for dropped frames (counted as incorrect).
    pub accuracy_timeline: Vec<(f64, f64)>,
    /// Mean of the accuracy timeline (the paper's end-to-end averaged
    /// accuracy).
    pub mean_accuracy: f64,
    /// Fraction of streamed frames dropped by insufficient inference
    /// throughput.
    pub frame_drop_rate: f64,
    /// Total platform energy over the scenario in joules.
    pub energy_joules: f64,
    /// Average platform power in watts.
    pub power_watts: f64,
    /// Executed phases in order.
    pub phases: Vec<PhaseRecord>,
    /// Number of drift responses (buffer resets) the scheduler issued.
    pub drift_responses: usize,
    /// Scenario duration in seconds.
    pub duration_s: f64,
}

impl SimResult {
    /// Accuracy averaged over fixed windows (Figure 10 uses 15-second
    /// windows), returned as `(window end time, accuracy)`.
    ///
    /// A non-positive or non-finite `window_s` defines no windows, so the
    /// returned vector is empty.
    #[must_use]
    pub fn windowed_accuracy(&self, window_s: f64) -> Vec<(f64, f64)> {
        if window_s <= 0.0 || !window_s.is_finite() {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut window_end = window_s;
        let mut acc = Vec::new();
        for &(t, a) in &self.accuracy_timeline {
            while t >= window_end {
                if !acc.is_empty() {
                    out.push((window_end, acc.iter().sum::<f64>() / acc.len() as f64));
                    acc.clear();
                }
                window_end += window_s;
            }
            acc.push(a);
        }
        if !acc.is_empty() {
            out.push((window_end, acc.iter().sum::<f64>() / acc.len() as f64));
        }
        out
    }

    /// Total seconds spent in each phase kind `(label, retrain, wait)`.
    #[must_use]
    pub fn time_breakdown(&self) -> (f64, f64, f64) {
        let mut label = 0.0;
        let mut retrain = 0.0;
        let mut wait = 0.0;
        for phase in &self.phases {
            match phase.kind {
                PhaseKind::Label => label += phase.duration_s,
                PhaseKind::Retrain => retrain += phase.duration_s,
                PhaseKind::Wait => wait += phase.duration_s,
            }
        }
        (label, retrain, wait)
    }

    /// Number of retraining phases completed.
    #[must_use]
    pub fn retrain_count(&self) -> usize {
        self.phases.iter().filter(|p| p.kind == PhaseKind::Retrain).count()
    }
}

/// The end-to-end continuous-learning simulator: a thin one-shot wrapper over
/// [`Session`].
///
/// See the crate-level example for typical usage.
pub struct ClSimulator {
    session: Session,
}

impl ClSimulator {
    /// Builds a simulator (equivalently: a [`Session`]).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`](crate::CoreError::InvalidConfig)
    /// if the configuration is invalid.
    pub fn new(config: SimConfig) -> Result<Self> {
        Ok(Self { session: Session::new(config)? })
    }

    /// The configuration this simulator was built from.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        self.session.config()
    }

    /// The underlying re-entrant session, for callers that want to switch to
    /// stepping mid-way.
    #[must_use]
    pub fn into_session(self) -> Session {
        self.session
    }

    /// Runs the full scenario and returns the collected metrics.
    ///
    /// # Errors
    ///
    /// Returns an error if a kernel invocation fails (which indicates a
    /// configuration inconsistency, such as mismatched feature dimensions).
    pub fn run(self) -> Result<SimResult> {
        let mut session = self.session;
        session.run_to_end()?;
        Ok(session.into_result())
    }
}

/// Shared fixtures for the core crate's unit tests.
#[cfg(test)]
pub(crate) mod test_support {
    use crate::config::SimConfig;
    use crate::platform::{KernelRate, PlatformRates, Sharing};
    use crate::sched::SchedulerKind;
    use dacapo_datagen::{Scenario, Segment, SegmentAttributes};
    use dacapo_dnn::zoo::ModelPair;

    /// A short two-segment scenario with one label-distribution drift, to keep
    /// unit-test simulations fast.
    pub(crate) fn short_scenario() -> Scenario {
        let first = SegmentAttributes::default();
        let second = SegmentAttributes {
            labels: dacapo_datagen::LabelDistribution::All,
            location: dacapo_datagen::Location::Highway,
            ..first
        };
        Scenario::from_segments(
            "short",
            vec![
                Segment { attributes: first, duration_s: 60.0 },
                Segment { attributes: second, duration_s: 60.0 },
            ],
        )
    }

    pub(crate) fn fast_rates(name: &str) -> PlatformRates {
        PlatformRates::new(
            name,
            KernelRate::fp32(120.0),
            KernelRate::fp32(40.0),
            KernelRate::fp32(120.0),
            Sharing::Partitioned { tsa_rows: 12, bsa_rows: 4 },
            1.0,
        )
        .expect("test rates are valid")
    }

    pub(crate) fn short_config(scheduler: SchedulerKind) -> SimConfig {
        SimConfig::builder(short_scenario(), ModelPair::ResNet18Wrn50)
            .platform_rates(fast_rates("test"))
            .scheduler(scheduler)
            .measurement(5.0, 20)
            .pretrain_samples(128)
            .build()
            .unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::{short_config, short_scenario};
    use super::*;
    use crate::platform::PlatformKind;
    use crate::sched::SchedulerKind;
    use dacapo_dnn::zoo::ModelPair;

    #[test]
    fn simulation_produces_complete_timeline_and_phases() {
        let result = ClSimulator::new(short_config(SchedulerKind::DaCapoSpatiotemporal))
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(result.duration_s, 120.0);
        assert_eq!(result.accuracy_timeline.len(), 24); // every 5 s
        assert!(result.mean_accuracy > 0.3, "mean accuracy {}", result.mean_accuracy);
        assert!(result.mean_accuracy <= 1.0);
        assert!(!result.phases.is_empty());
        assert!(result.retrain_count() >= 1);
        let (label, retrain, wait) = result.time_breakdown();
        assert!((label + retrain + wait - 120.0).abs() < 1.0, "{label} + {retrain} + {wait}");
        assert_eq!(result.frame_drop_rate, 0.0);
        assert!((result.energy_joules - 120.0).abs() < 1e-6); // 1 W * 120 s
    }

    #[test]
    fn spatiotemporal_detects_the_injected_drift() {
        let result = ClSimulator::new(short_config(SchedulerKind::DaCapoSpatiotemporal))
            .unwrap()
            .run()
            .unwrap();
        assert!(
            result.drift_responses >= 1,
            "the label-distribution drift at t=60s should trigger a buffer reset"
        );
    }

    #[test]
    fn spatial_scheduler_never_issues_drift_responses() {
        let result =
            ClSimulator::new(short_config(SchedulerKind::DaCapoSpatial)).unwrap().run().unwrap();
        assert_eq!(result.drift_responses, 0);
        assert!(result.phases.iter().all(|p| !p.drift_response));
    }

    #[test]
    fn ekya_has_idle_profile_time() {
        let result = ClSimulator::new(short_config(SchedulerKind::Ekya)).unwrap().run().unwrap();
        let (_, _, wait) = result.time_breakdown();
        assert!(wait > 0.0, "Ekya should spend window time profiling/idling");
    }

    #[test]
    fn results_are_deterministic_for_a_fixed_seed() {
        let a = ClSimulator::new(short_config(SchedulerKind::DaCapoSpatiotemporal))
            .unwrap()
            .run()
            .unwrap();
        let b = ClSimulator::new(short_config(SchedulerKind::DaCapoSpatiotemporal))
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(a.accuracy_timeline, b.accuracy_timeline);
        assert_eq!(a.phases.len(), b.phases.len());
    }

    #[test]
    fn frame_drops_scale_down_reported_accuracy() {
        use crate::platform::{KernelRate, PlatformRates, Sharing};
        // Half the 30 FPS stream's inference demand on a time-shared device.
        let starved = PlatformRates::new(
            "starved",
            KernelRate::fp32(15.0),
            KernelRate::fp32(40.0),
            KernelRate::fp32(120.0),
            Sharing::TimeShared,
            1.0,
        )
        .unwrap();
        let config = SimConfig::builder(short_scenario(), ModelPair::ResNet18Wrn50)
            .platform_rates(starved)
            .scheduler(SchedulerKind::Ekya)
            .measurement(5.0, 20)
            .pretrain_samples(128)
            .build()
            .unwrap();
        let result = ClSimulator::new(config).unwrap().run().unwrap();
        assert!((result.frame_drop_rate - 0.5).abs() < 1e-9);
        assert!(
            result.mean_accuracy <= 0.55,
            "dropping half the frames caps accuracy near 50%, got {}",
            result.mean_accuracy
        );
    }

    #[test]
    fn windowed_accuracy_averages_the_timeline() {
        let result = ClSimulator::new(short_config(SchedulerKind::DaCapoSpatiotemporal))
            .unwrap()
            .run()
            .unwrap();
        let windows = result.windowed_accuracy(15.0);
        assert_eq!(windows.len(), 8); // 120 s / 15 s
        for (_, acc) in windows {
            assert!((0.0..=1.0).contains(&acc));
        }
    }

    #[test]
    fn windowed_accuracy_handles_degenerate_windows() {
        let result = SimResult {
            system: "test".into(),
            scenario: "test".into(),
            pair: ModelPair::ResNet18Wrn50,
            scheduler: SchedulerKind::DaCapoSpatiotemporal.to_string(),
            accuracy_timeline: vec![(0.0, 0.5), (5.0, 0.7)],
            mean_accuracy: 0.6,
            frame_drop_rate: 0.0,
            energy_joules: 1.0,
            power_watts: 1.0,
            phases: Vec::new(),
            drift_responses: 0,
            duration_s: 10.0,
        };
        assert!(result.windowed_accuracy(0.0).is_empty());
        assert!(result.windowed_accuracy(-15.0).is_empty());
        assert!(result.windowed_accuracy(f64::NAN).is_empty());
        assert!(result.windowed_accuracy(f64::INFINITY).is_empty());
        // A sane window still works on the same result.
        assert_eq!(result.windowed_accuracy(10.0).len(), 1);
    }

    #[test]
    fn dacapo_platform_config_builds_and_runs_end_to_end() {
        // Exercise the real platform derivation (spatial allocation) on a
        // short scenario rather than synthetic rates.
        let config = SimConfig::builder(short_scenario(), ModelPair::ResNet18Wrn50)
            .platform(PlatformKind::DaCapo)
            .scheduler(SchedulerKind::DaCapoSpatiotemporal)
            .measurement(10.0, 15)
            .pretrain_samples(96)
            .build()
            .unwrap();
        assert!(!config.platform_rates().unwrap().is_shared());
        let result = ClSimulator::new(config).unwrap().run().unwrap();
        assert!(result.mean_accuracy > 0.2);
        assert!((result.power_watts - 0.236).abs() < 1e-9);
    }
}
