//! The end-to-end continuous-learning system simulator.
//!
//! The simulator walks a drifting scenario's timeline, letting the configured
//! scheduler decide how the retraining/labeling resources are spent while the
//! inference resources classify every streamed frame. Kernel durations come
//! from the platform rates (DaCapo sub-accelerator cycle model or GPU
//! roofline), accuracy comes from actually running the student network on the
//! synthetic stream, and drift detection follows Algorithm 1.

use crate::buffer::{LabeledSample, SampleBuffer};
use crate::config::SimConfig;
use crate::platform::PlatformRates;
use crate::sched::{Action, Scheduler, SchedulerContext, SchedulerKind};
use crate::student::StudentModel;
use crate::{CoreError, Result};
use dacapo_datagen::{Frame, FrameStream};
use dacapo_dnn::zoo::ModelPair;
use dacapo_dnn::TeacherOracle;
use serde::{Deserialize, Serialize};

/// What a phase spent its time on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PhaseKind {
    /// Teacher labeling of freshly sampled frames.
    Label,
    /// Student retraining (plus its validation pass).
    Retrain,
    /// Idle retraining/labeling resources (window padding, profiling).
    Wait,
}

/// One executed phase of the temporal schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseRecord {
    /// Phase type.
    pub kind: PhaseKind,
    /// Start time in seconds.
    pub start_s: f64,
    /// Duration in seconds.
    pub duration_s: f64,
    /// Samples processed (labeled samples, or retraining sample·epochs).
    pub samples: usize,
    /// Whether this phase was a drift response (buffer reset + extended
    /// labeling).
    pub drift_response: bool,
}

/// The outcome of one simulated run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Platform + scheduler name, e.g. `"DaCapo (16x16 DPEs) / DaCapo-Spatiotemporal"`.
    pub system: String,
    /// Scenario name.
    pub scenario: String,
    /// Model pair evaluated.
    pub pair: ModelPair,
    /// Scheduler used.
    pub scheduler: SchedulerKind,
    /// `(time, accuracy)` samples along the run; accuracy already accounts
    /// for dropped frames (counted as incorrect).
    pub accuracy_timeline: Vec<(f64, f64)>,
    /// Mean of the accuracy timeline (the paper's end-to-end averaged
    /// accuracy).
    pub mean_accuracy: f64,
    /// Fraction of streamed frames dropped by insufficient inference
    /// throughput.
    pub frame_drop_rate: f64,
    /// Total platform energy over the scenario in joules.
    pub energy_joules: f64,
    /// Average platform power in watts.
    pub power_watts: f64,
    /// Executed phases in order.
    pub phases: Vec<PhaseRecord>,
    /// Number of drift responses (buffer resets) the scheduler issued.
    pub drift_responses: usize,
    /// Scenario duration in seconds.
    pub duration_s: f64,
}

impl SimResult {
    /// Accuracy averaged over fixed windows (Figure 10 uses 15-second
    /// windows), returned as `(window end time, accuracy)`.
    ///
    /// # Panics
    ///
    /// Panics if `window_s` is not positive.
    #[must_use]
    pub fn windowed_accuracy(&self, window_s: f64) -> Vec<(f64, f64)> {
        assert!(window_s > 0.0, "window must be positive");
        let mut out = Vec::new();
        let mut window_end = window_s;
        let mut acc = Vec::new();
        for &(t, a) in &self.accuracy_timeline {
            while t >= window_end {
                if !acc.is_empty() {
                    out.push((window_end, acc.iter().sum::<f64>() / acc.len() as f64));
                    acc.clear();
                }
                window_end += window_s;
            }
            acc.push(a);
        }
        if !acc.is_empty() {
            out.push((window_end, acc.iter().sum::<f64>() / acc.len() as f64));
        }
        out
    }

    /// Total seconds spent in each phase kind `(label, retrain, wait)`.
    #[must_use]
    pub fn time_breakdown(&self) -> (f64, f64, f64) {
        let mut label = 0.0;
        let mut retrain = 0.0;
        let mut wait = 0.0;
        for phase in &self.phases {
            match phase.kind {
                PhaseKind::Label => label += phase.duration_s,
                PhaseKind::Retrain => retrain += phase.duration_s,
                PhaseKind::Wait => wait += phase.duration_s,
            }
        }
        (label, retrain, wait)
    }

    /// Number of retraining phases completed.
    #[must_use]
    pub fn retrain_count(&self) -> usize {
        self.phases.iter().filter(|p| p.kind == PhaseKind::Retrain).count()
    }
}

/// The end-to-end continuous-learning simulator.
///
/// See the crate-level example for typical usage.
pub struct ClSimulator {
    config: SimConfig,
    stream: FrameStream,
    student: StudentModel,
    teacher: TeacherOracle,
    buffer: SampleBuffer,
    scheduler: Box<dyn Scheduler>,
}

/// Smallest phase duration the simulator will schedule, to guarantee forward
/// progress even when a platform rate is enormous.
const MIN_PHASE_SECONDS: f64 = 0.05;

impl ClSimulator {
    /// Builds a simulator: constructs the stream, pre-trains the student on
    /// the general (mixed-context) distribution, and instantiates the
    /// scheduler.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the configuration is invalid.
    pub fn new(config: SimConfig) -> Result<Self> {
        config.validate()?;
        let stream = FrameStream::new(&config.scenario, config.stream);
        let mut student = StudentModel::new(
            config.stream.feature_dim,
            config.platform.inference_quant,
            config.platform.training_quant,
            config.hyper.learning_rate,
            config.hyper.batch_size,
            config.seed,
        )?;
        let teacher = TeacherOracle::new(
            dacapo_datagen::NUM_CLASSES,
            config.teacher_accuracy,
            config.seed.wrapping_add(1),
        );

        // Pre-deployment training on the "general dataset": samples spread
        // uniformly over the whole scenario (every context appears), labeled
        // with ground truth, as the paper assumes pre-trained models.
        if config.pretrain_samples > 0 {
            let stride = (stream.num_frames() / config.pretrain_samples.max(1) as u64).max(1);
            let pretrain: Vec<LabeledSample> = (0..stream.num_frames())
                .step_by(stride as usize)
                .map(|i| {
                    let frame = stream.frame_at(i);
                    LabeledSample {
                        features: frame.sample.features,
                        teacher_label: frame.sample.true_class,
                        true_class: frame.sample.true_class,
                        timestamp_s: frame.timestamp_s,
                    }
                })
                .collect();
            student.retrain(&pretrain, 2)?;
        }

        let buffer = SampleBuffer::new(config.hyper.buffer_capacity);
        let scheduler = config.scheduler.create(&config.hyper);
        Ok(Self { config, stream, student, teacher, buffer, scheduler })
    }

    /// The configuration this simulator was built from.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs the full scenario and returns the collected metrics.
    ///
    /// # Errors
    ///
    /// Returns an error if a kernel invocation fails (which indicates a
    /// configuration inconsistency, such as mismatched feature dimensions).
    pub fn run(mut self) -> Result<SimResult> {
        let duration = self.config.scenario.duration_s();
        let fps = self.config.stream.fps;
        let platform: PlatformRates = self.config.platform.clone();
        let drop_rate = platform.frame_drop_rate(fps);

        let mut now = 0.0f64;
        let mut next_measure = 0.0f64;
        let mut timeline: Vec<(f64, f64)> = Vec::new();
        let mut phases: Vec<PhaseRecord> = Vec::new();
        let mut last_validation: Option<f64> = None;
        let mut last_labeling: Option<f64> = None;
        let mut drift_responses = 0usize;
        let mut phase_seed = self.config.seed;

        while now < duration {
            let ctx = SchedulerContext {
                now_s: now,
                buffer_len: self.buffer.len(),
                buffer_capacity: self.buffer.capacity(),
                last_validation_accuracy: last_validation,
                last_labeling_accuracy: last_labeling,
            };
            let action = self.scheduler.next_action(&ctx);
            phase_seed = phase_seed.wrapping_add(0x9e37_79b9);

            match action {
                Action::Label { samples, reset_buffer } => {
                    if reset_buffer {
                        self.buffer.reset();
                        drift_responses += 1;
                    }
                    let rate = platform.effective_labeling_sps(fps);
                    if rate <= f64::EPSILON {
                        // Labeling is starved out entirely (e.g. an overloaded
                        // GPU); burn the rest of the scenario waiting.
                        let wait = (duration - now).max(MIN_PHASE_SECONDS);
                        self.measure(&mut timeline, &mut next_measure, now + wait, drop_rate)?;
                        phases.push(PhaseRecord {
                            kind: PhaseKind::Wait,
                            start_s: now,
                            duration_s: wait,
                            samples: 0,
                            drift_response: reset_buffer,
                        });
                        now += wait;
                        continue;
                    }
                    let ideal_duration = samples.max(1) as f64 / rate;
                    let phase_duration = ideal_duration.clamp(MIN_PHASE_SECONDS, duration - now);
                    let actual_samples =
                        ((phase_duration * rate).floor() as usize).clamp(1, samples.max(1));

                    // Spread the labeled samples over the phase's time range.
                    let step = ((phase_duration * fps) as u64 / actual_samples as u64).max(1);
                    let frames = self.stream.frames_between(now, now + phase_duration, step);
                    let selected: Vec<Frame> = frames.into_iter().take(actual_samples).collect();
                    let labeled: Vec<LabeledSample> = selected
                        .iter()
                        .map(|frame| LabeledSample {
                            features: frame.sample.features.clone(),
                            teacher_label: self
                                .teacher
                                .label(frame.sample.true_class, frame.attributes.difficulty()),
                            true_class: frame.sample.true_class,
                            timestamp_s: frame.timestamp_s,
                        })
                        .collect();
                    // acc_l: the current student's accuracy on the freshly
                    // labeled data, judged by the teacher's labels.
                    last_labeling = Some(self.student.accuracy_on_samples(&labeled)?);
                    self.buffer.extend(labeled);

                    self.measure(&mut timeline, &mut next_measure, now + phase_duration, drop_rate)?;
                    phases.push(PhaseRecord {
                        kind: PhaseKind::Label,
                        start_s: now,
                        duration_s: phase_duration,
                        samples: actual_samples,
                        drift_response: reset_buffer,
                    });
                    now += phase_duration;
                }
                Action::Retrain { samples, epochs } => {
                    let (train, validation) = self.buffer.draw(
                        samples,
                        self.config.hyper.validation_samples,
                        phase_seed,
                    );
                    if train.is_empty() {
                        let wait = MIN_PHASE_SECONDS.max(1.0);
                        self.measure(&mut timeline, &mut next_measure, now + wait, drop_rate)?;
                        phases.push(PhaseRecord {
                            kind: PhaseKind::Wait,
                            start_s: now,
                            duration_s: wait,
                            samples: 0,
                            drift_response: false,
                        });
                        now += wait;
                        continue;
                    }
                    let presentations = train.len() * epochs.max(1);
                    let rate = platform.effective_retraining_sps(fps);
                    let phase_duration = if rate <= f64::EPSILON {
                        duration - now
                    } else {
                        (presentations as f64 / rate).clamp(MIN_PHASE_SECONDS, duration - now)
                    };

                    // The old model keeps serving inference during retraining;
                    // the updated weights deploy when the phase completes.
                    self.measure(&mut timeline, &mut next_measure, now + phase_duration, drop_rate)?;
                    self.student.retrain(&train, epochs.max(1))?;
                    last_validation = Some(self.student.accuracy_on_samples(&validation)?);

                    phases.push(PhaseRecord {
                        kind: PhaseKind::Retrain,
                        start_s: now,
                        duration_s: phase_duration,
                        samples: presentations,
                        drift_response: false,
                    });
                    now += phase_duration;
                }
                Action::Wait { seconds } => {
                    let wait = seconds.clamp(MIN_PHASE_SECONDS, duration - now);
                    self.measure(&mut timeline, &mut next_measure, now + wait, drop_rate)?;
                    phases.push(PhaseRecord {
                        kind: PhaseKind::Wait,
                        start_s: now,
                        duration_s: wait,
                        samples: 0,
                        drift_response: false,
                    });
                    now += wait;
                }
            }
        }

        // Flush any remaining measurement points.
        self.measure(&mut timeline, &mut next_measure, duration, drop_rate)?;

        let mean_accuracy = if timeline.is_empty() {
            0.0
        } else {
            timeline.iter().map(|(_, a)| a).sum::<f64>() / timeline.len() as f64
        };
        Ok(SimResult {
            system: format!("{} / {}", platform.name, self.scheduler.kind()),
            scenario: self.config.scenario.name().to_string(),
            pair: self.config.pair,
            scheduler: self.scheduler.kind(),
            accuracy_timeline: timeline,
            mean_accuracy,
            frame_drop_rate: drop_rate,
            energy_joules: platform.energy_joules(duration),
            power_watts: platform.power_watts,
            phases,
            drift_responses,
            duration_s: duration,
        })
    }

    /// Records accuracy measurements at every measurement point in
    /// `[next_measure, until)` using the student's current weights.
    fn measure(
        &self,
        timeline: &mut Vec<(f64, f64)>,
        next_measure: &mut f64,
        until: f64,
        drop_rate: f64,
    ) -> Result<()> {
        let interval = self.config.measure_interval_s;
        let frames_wanted = self.config.eval_frames_per_measurement as u64;
        while *next_measure < until && *next_measure < self.config.scenario.duration_s() {
            let window_frames = (interval * self.config.stream.fps) as u64;
            let step = (window_frames / frames_wanted.max(1)).max(1);
            let frames = self.stream.frames_between(*next_measure, *next_measure + interval, step);
            if frames.is_empty() {
                return Err(CoreError::InvalidConfig {
                    reason: "measurement interval produced no evaluation frames".into(),
                });
            }
            let accuracy = self.student.accuracy_on_frames(&frames)?;
            timeline.push((*next_measure, accuracy * (1.0 - drop_rate)));
            *next_measure += interval;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::PlatformKind;
    use dacapo_datagen::{Scenario, Segment, SegmentAttributes};
    use dacapo_dnn::QuantMode;

    /// A short two-segment scenario with one label-distribution drift, to keep
    /// unit-test simulations fast.
    fn short_scenario() -> Scenario {
        let first = SegmentAttributes::default();
        let second = SegmentAttributes {
            labels: dacapo_datagen::LabelDistribution::All,
            location: dacapo_datagen::Location::Highway,
            ..first
        };
        Scenario::from_segments(
            "short",
            vec![
                Segment { attributes: first, duration_s: 60.0 },
                Segment { attributes: second, duration_s: 60.0 },
            ],
        )
    }

    fn fast_rates(name: &str) -> PlatformRates {
        PlatformRates {
            name: name.to_string(),
            inference_fps_capacity: 120.0,
            labeling_sps: 40.0,
            retraining_sps: 120.0,
            shared: false,
            power_watts: 1.0,
            inference_quant: QuantMode::Fp32,
            training_quant: QuantMode::Fp32,
            tsa_rows: 12,
            bsa_rows: 4,
        }
    }

    fn short_config(scheduler: SchedulerKind) -> SimConfig {
        SimConfig::builder(short_scenario(), ModelPair::ResNet18Wrn50)
            .platform_rates(fast_rates("test"))
            .scheduler(scheduler)
            .measurement(5.0, 20)
            .pretrain_samples(128)
            .build()
            .unwrap()
    }

    #[test]
    fn simulation_produces_complete_timeline_and_phases() {
        let result = ClSimulator::new(short_config(SchedulerKind::DaCapoSpatiotemporal))
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(result.duration_s, 120.0);
        assert_eq!(result.accuracy_timeline.len(), 24); // every 5 s
        assert!(result.mean_accuracy > 0.3, "mean accuracy {}", result.mean_accuracy);
        assert!(result.mean_accuracy <= 1.0);
        assert!(!result.phases.is_empty());
        assert!(result.retrain_count() >= 1);
        let (label, retrain, wait) = result.time_breakdown();
        assert!((label + retrain + wait - 120.0).abs() < 1.0, "{label} + {retrain} + {wait}");
        assert_eq!(result.frame_drop_rate, 0.0);
        assert!((result.energy_joules - 120.0).abs() < 1e-6); // 1 W * 120 s
    }

    #[test]
    fn spatiotemporal_detects_the_injected_drift() {
        let result = ClSimulator::new(short_config(SchedulerKind::DaCapoSpatiotemporal))
            .unwrap()
            .run()
            .unwrap();
        assert!(
            result.drift_responses >= 1,
            "the label-distribution drift at t=60s should trigger a buffer reset"
        );
    }

    #[test]
    fn spatial_scheduler_never_issues_drift_responses() {
        let result =
            ClSimulator::new(short_config(SchedulerKind::DaCapoSpatial)).unwrap().run().unwrap();
        assert_eq!(result.drift_responses, 0);
        assert!(result.phases.iter().all(|p| !p.drift_response));
    }

    #[test]
    fn ekya_has_idle_profile_time() {
        let result = ClSimulator::new(short_config(SchedulerKind::Ekya)).unwrap().run().unwrap();
        let (_, _, wait) = result.time_breakdown();
        assert!(wait > 0.0, "Ekya should spend window time profiling/idling");
    }

    #[test]
    fn results_are_deterministic_for_a_fixed_seed() {
        let a = ClSimulator::new(short_config(SchedulerKind::DaCapoSpatiotemporal))
            .unwrap()
            .run()
            .unwrap();
        let b = ClSimulator::new(short_config(SchedulerKind::DaCapoSpatiotemporal))
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(a.accuracy_timeline, b.accuracy_timeline);
        assert_eq!(a.phases.len(), b.phases.len());
    }

    #[test]
    fn frame_drops_scale_down_reported_accuracy() {
        let mut starved = fast_rates("starved");
        starved.inference_fps_capacity = 15.0; // half the 30 FPS stream
        starved.shared = true;
        let config = SimConfig::builder(short_scenario(), ModelPair::ResNet18Wrn50)
            .platform_rates(starved)
            .scheduler(SchedulerKind::Ekya)
            .measurement(5.0, 20)
            .pretrain_samples(128)
            .build()
            .unwrap();
        let result = ClSimulator::new(config).unwrap().run().unwrap();
        assert!((result.frame_drop_rate - 0.5).abs() < 1e-9);
        assert!(
            result.mean_accuracy <= 0.55,
            "dropping half the frames caps accuracy near 50%, got {}",
            result.mean_accuracy
        );
    }

    #[test]
    fn windowed_accuracy_averages_the_timeline() {
        let result = ClSimulator::new(short_config(SchedulerKind::DaCapoSpatiotemporal))
            .unwrap()
            .run()
            .unwrap();
        let windows = result.windowed_accuracy(15.0);
        assert_eq!(windows.len(), 8); // 120 s / 15 s
        for (_, acc) in windows {
            assert!((0.0..=1.0).contains(&acc));
        }
    }

    #[test]
    fn dacapo_platform_config_builds_and_runs_end_to_end() {
        // Exercise the real platform derivation (spatial allocation) on a
        // short scenario rather than synthetic rates.
        let config = SimConfig::builder(short_scenario(), ModelPair::ResNet18Wrn50)
            .platform(PlatformKind::DaCapo)
            .scheduler(SchedulerKind::DaCapoSpatiotemporal)
            .measurement(10.0, 15)
            .pretrain_samples(96)
            .build()
            .unwrap();
        assert!(!config.platform.shared);
        let result = ClSimulator::new(config).unwrap().run().unwrap();
        assert!(result.mean_accuracy > 0.2);
        assert!((result.power_watts - 0.236).abs() < 1e-9);
    }
}
