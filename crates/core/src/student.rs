//! The deployed student model: a thin continuous-learning wrapper around the
//! trainable network.

use crate::buffer::LabeledSample;
use crate::{CoreError, Result};
use dacapo_datagen::{Frame, NUM_CLASSES};
use dacapo_dnn::{Mlp, MlpConfig, QuantMode, TrainScratch};
use serde::{Deserialize, Serialize};

/// The student model as deployed in the continuous-learning loop.
///
/// Wraps the trainable [`Mlp`] and exposes the three operations the runtime
/// needs: per-frame inference accuracy (against ground truth, for reporting),
/// validation accuracy (against teacher labels, what the system can observe),
/// and retraining on buffered samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudentModel {
    network: Mlp,
    learning_rate: f32,
    batch_size: usize,
}

impl StudentModel {
    /// Builds a student for the given feature dimensionality and arithmetic
    /// modes.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Dnn`] if the network configuration is invalid.
    pub fn new(
        feature_dim: usize,
        inference_quant: QuantMode,
        training_quant: QuantMode,
        learning_rate: f32,
        batch_size: usize,
        seed: u64,
    ) -> Result<Self> {
        if batch_size == 0 {
            return Err(CoreError::InvalidConfig { reason: "batch size must be positive".into() });
        }
        let config = MlpConfig {
            input_dim: feature_dim,
            hidden: vec![64, 32],
            num_classes: NUM_CLASSES,
            inference_mode: inference_quant,
            training_mode: training_quant,
            seed,
        };
        Ok(Self { network: Mlp::new(config)?, learning_rate, batch_size })
    }

    /// The wrapped network (for inspection by tests and tooling).
    #[must_use]
    pub fn network(&self) -> &Mlp {
        &self.network
    }

    /// Classification accuracy on a set of stream frames, judged against the
    /// ground-truth classes. This is the end-to-end accuracy the evaluation
    /// reports; the deployed system itself never sees it.
    ///
    /// Returns 0 for an empty slice.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Dnn`] if the feature width does not match.
    pub fn accuracy_on_frames(&self, frames: &[Frame]) -> Result<f64> {
        self.accuracy_on_frames_with(frames, &mut TrainScratch::new())
    }

    /// [`StudentModel::accuracy_on_frames`] against a caller-owned scratch
    /// arena, so steady-state measurement loops allocate no matrices. The
    /// result is bit-identical to the allocating variant.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Dnn`] if the feature width does not match.
    pub(crate) fn accuracy_on_frames_with(
        &self,
        frames: &[Frame],
        scratch: &mut TrainScratch,
    ) -> Result<f64> {
        if frames.is_empty() {
            return Ok(0.0);
        }
        let rows: Vec<&[f32]> = frames.iter().map(|f| f.sample.features.as_slice()).collect();
        let labels: Vec<usize> = frames.iter().map(|f| f.sample.true_class).collect();
        Ok(f64::from(self.network.evaluate_rows_with(&rows, &labels, scratch)?))
    }

    /// Accuracy on labeled samples, judged against the *teacher* labels —
    /// the observable quantity Algorithm 1 uses for both validation
    /// (`acc_v`) and freshly-labeled data (`acc_l`).
    ///
    /// Returns 0 for an empty slice.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Dnn`] if the feature width does not match.
    pub fn accuracy_on_samples(&self, samples: &[LabeledSample]) -> Result<f64> {
        self.accuracy_on_samples_with(samples, &mut TrainScratch::new())
    }

    /// [`StudentModel::accuracy_on_samples`] against a caller-owned scratch
    /// arena (see [`StudentModel::accuracy_on_frames_with`]).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Dnn`] if the feature width does not match.
    pub(crate) fn accuracy_on_samples_with(
        &self,
        samples: &[LabeledSample],
        scratch: &mut TrainScratch,
    ) -> Result<f64> {
        if samples.is_empty() {
            return Ok(0.0);
        }
        let rows: Vec<&[f32]> = samples.iter().map(|s| s.features.as_slice()).collect();
        let labels: Vec<usize> = samples.iter().map(|s| s.teacher_label).collect();
        Ok(f64::from(self.network.evaluate_rows_with(&rows, &labels, scratch)?))
    }

    /// Retrains the student on labeled samples for the given number of
    /// epochs, using the teacher labels as targets.
    ///
    /// Returns the number of sample presentations processed (samples ×
    /// epochs), which is what the platform's retraining throughput is charged
    /// for.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Dnn`] on dimension mismatches.
    pub fn retrain(&mut self, samples: &[LabeledSample], epochs: usize) -> Result<usize> {
        self.retrain_with(samples, epochs, &mut TrainScratch::new())
    }

    /// [`StudentModel::retrain`] against a caller-owned scratch arena, so
    /// steady-state retraining loops allocate no matrices. The resulting
    /// weights are bit-identical to the allocating variant.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Dnn`] on dimension mismatches.
    pub(crate) fn retrain_with(
        &mut self,
        samples: &[LabeledSample],
        epochs: usize,
        scratch: &mut TrainScratch,
    ) -> Result<usize> {
        if samples.is_empty() || epochs == 0 {
            return Ok(0);
        }
        let rows: Vec<&[f32]> = samples.iter().map(|s| s.features.as_slice()).collect();
        let labels: Vec<usize> = samples.iter().map(|s| s.teacher_label).collect();
        let report = self.network.train_rows_with(
            &rows,
            &labels,
            epochs,
            self.batch_size,
            self.learning_rate,
            scratch,
        )?;
        Ok(report.samples_processed)
    }

    /// Mutable access to the wrapped network, for the cluster executor's
    /// stacked retraining dispatch (the jobs borrow each session's network).
    pub(crate) fn network_mut(&mut self) -> &mut Mlp {
        &mut self.network
    }

    /// The SGD hyperparameters a stacked retraining job must replicate:
    /// `(learning_rate, batch_size)`.
    pub(crate) fn hyperparams(&self) -> (f32, usize) {
        (self.learning_rate, self.batch_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dacapo_datagen::{FrameStream, Scenario, StreamConfig};

    fn make_student() -> StudentModel {
        StudentModel::new(16, QuantMode::Fp32, QuantMode::Fp32, 0.02, 16, 1).unwrap()
    }

    fn labeled_from_frames(frames: &[Frame]) -> Vec<LabeledSample> {
        frames
            .iter()
            .map(|f| LabeledSample {
                features: f.sample.features.clone(),
                teacher_label: f.sample.true_class,
                true_class: f.sample.true_class,
                timestamp_s: f.timestamp_s,
            })
            .collect()
    }

    #[test]
    fn zero_batch_size_is_rejected() {
        assert!(StudentModel::new(16, QuantMode::Fp32, QuantMode::Fp32, 0.02, 0, 1).is_err());
    }

    #[test]
    fn empty_inputs_return_zero_accuracy_and_no_work() {
        let mut student = make_student();
        assert_eq!(student.accuracy_on_frames(&[]).unwrap(), 0.0);
        assert_eq!(student.accuracy_on_samples(&[]).unwrap(), 0.0);
        assert_eq!(student.retrain(&[], 5).unwrap(), 0);
    }

    #[test]
    fn retraining_on_segment_data_improves_accuracy_on_that_segment() {
        let stream = FrameStream::new(&Scenario::s1(), StreamConfig::default());
        let frames = stream.frames_between(0.0, 20.0, 2);
        let mut student = make_student();
        let before = student.accuracy_on_frames(&frames).unwrap();
        let samples = labeled_from_frames(&frames);
        let processed = student.retrain(&samples, 5).unwrap();
        assert_eq!(processed, samples.len() * 5);
        let after = student.accuracy_on_frames(&frames).unwrap();
        assert!(
            after > before + 0.2 && after > 0.6,
            "retraining should lift accuracy substantially: {before:.2} -> {after:.2}"
        );
    }

    #[test]
    fn drift_lowers_accuracy_until_retrained_on_new_segment() {
        // Train on the first segment of ES1, then evaluate on a drifted
        // segment: accuracy must drop, and retraining on the new segment must
        // restore it. This is the core dynamic the whole system manages.
        let stream = FrameStream::new(&Scenario::es1(), StreamConfig::default());
        let scenario = stream.scenario().clone();
        let first_attrs = scenario.segments()[0].attributes;
        let drift_time = scenario
            .segments()
            .iter()
            .scan(0.0, |t, s| {
                let start = *t;
                *t += s.duration_s;
                Some((start, s.attributes))
            })
            .find(|(_, a)| *a != first_attrs)
            .map(|(t, _)| t)
            .expect("ES1 has drift");

        let mut student = make_student();
        let old_frames = stream.frames_between(0.0, 30.0, 2);
        student.retrain(&labeled_from_frames(&old_frames), 6).unwrap();
        let acc_old = student.accuracy_on_frames(&old_frames).unwrap();

        let new_frames = stream.frames_between(drift_time, drift_time + 30.0, 2);
        let acc_drifted = student.accuracy_on_frames(&new_frames).unwrap();
        assert!(
            acc_drifted < acc_old - 0.1,
            "drift should hurt: old-segment {acc_old:.2}, drifted {acc_drifted:.2}"
        );

        student.retrain(&labeled_from_frames(&new_frames), 6).unwrap();
        let acc_recovered = student.accuracy_on_frames(&new_frames).unwrap();
        assert!(
            acc_recovered > acc_drifted + 0.1,
            "retraining on the new segment should recover: {acc_drifted:.2} -> {acc_recovered:.2}"
        );
    }

    #[test]
    fn accuracy_on_samples_uses_teacher_labels() {
        let stream = FrameStream::new(&Scenario::s1(), StreamConfig::default());
        let frames = stream.frames_between(0.0, 10.0, 3);
        let mut student = make_student();
        let mut samples = labeled_from_frames(&frames);
        student.retrain(&samples, 6).unwrap();
        let truthful = student.accuracy_on_samples(&samples).unwrap();
        // Corrupt the teacher labels: observable accuracy collapses even
        // though the model did not change.
        for s in &mut samples {
            s.teacher_label = (s.teacher_label + 1) % NUM_CLASSES;
        }
        let corrupted = student.accuracy_on_samples(&samples).unwrap();
        assert!(corrupted < truthful);
    }
}
