//! The fixed-capacity labeled sample buffer.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One sample that has been labeled by the teacher.
///
/// The buffer stores the teacher's label (what the system trains and
/// validates against) alongside the ground-truth class, which only the
/// evaluation harness may look at.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabeledSample {
    /// Feature vector of the object crop.
    pub features: Vec<f32>,
    /// Label assigned by the teacher model.
    pub teacher_label: usize,
    /// Ground-truth class (hidden from the system; used only for reporting).
    pub true_class: usize,
    /// Stream timestamp at which the sample was captured, in seconds.
    pub timestamp_s: f64,
}

/// Fixed-capacity buffer of labeled samples (Section VI-A).
///
/// New samples evict the oldest ones once the capacity is reached; a data
/// drift clears the buffer entirely so stale samples stop polluting
/// retraining.
///
/// # Examples
///
/// ```
/// use dacapo_core::{LabeledSample, SampleBuffer};
///
/// let mut buffer = SampleBuffer::new(2);
/// for i in 0..3 {
///     buffer.push(LabeledSample {
///         features: vec![i as f32],
///         teacher_label: 0,
///         true_class: 0,
///         timestamp_s: i as f64,
///     });
/// }
/// assert_eq!(buffer.len(), 2);
/// assert_eq!(buffer.samples()[0].timestamp_s, 1.0); // oldest was evicted
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampleBuffer {
    capacity: usize,
    samples: Vec<LabeledSample>,
}

impl SampleBuffer {
    /// Creates an empty buffer with capacity `C_b`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "sample buffer capacity must be positive");
        Self { capacity, samples: Vec::with_capacity(capacity) }
    }

    /// Buffer capacity `C_b`.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of buffered samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the buffer holds no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The buffered samples, oldest first.
    #[must_use]
    pub fn samples(&self) -> &[LabeledSample] {
        &self.samples
    }

    /// Adds one sample, evicting the oldest if the buffer is full.
    pub fn push(&mut self, sample: LabeledSample) {
        if self.samples.len() == self.capacity {
            self.samples.remove(0);
        }
        self.samples.push(sample);
    }

    /// Adds a batch of samples (in order), evicting the oldest as needed.
    pub fn extend(&mut self, samples: impl IntoIterator<Item = LabeledSample>) {
        for sample in samples {
            self.push(sample);
        }
    }

    /// Removes every sample (the drift response of Algorithm 1, line 12).
    pub fn reset(&mut self) {
        self.samples.clear();
    }

    /// Draws disjoint retraining and validation subsets of up to `train` and
    /// `validation` samples (Algorithm 1, line 4). The draw is a seeded
    /// shuffle so experiments are reproducible.
    ///
    /// If the buffer holds fewer than `train + validation` samples, the
    /// available samples are split proportionally (validation gets at least
    /// one sample whenever the buffer holds at least two).
    #[must_use]
    pub fn draw(
        &self,
        train: usize,
        validation: usize,
        seed: u64,
    ) -> (Vec<LabeledSample>, Vec<LabeledSample>) {
        if self.samples.is_empty() {
            return (Vec::new(), Vec::new());
        }
        let mut indices: Vec<usize> = (0..self.samples.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        indices.shuffle(&mut rng);

        let want_total = train + validation;
        let available = indices.len();
        let (n_train, n_val) = if available >= want_total {
            (train, validation)
        } else if available >= 2 {
            let n_val = ((available * validation) / want_total.max(1)).max(1);
            (available - n_val, n_val)
        } else {
            (available, 0)
        };
        let train_set = indices[..n_train].iter().map(|&i| self.samples[i].clone()).collect();
        let val_set =
            indices[n_train..n_train + n_val].iter().map(|&i| self.samples[i].clone()).collect();
        (train_set, val_set)
    }

    /// Fraction of buffered samples captured after `timestamp_s`, a cheap
    /// freshness measure used by diagnostics.
    #[must_use]
    pub fn fresh_fraction(&self, timestamp_s: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let fresh = self.samples.iter().filter(|s| s.timestamp_s >= timestamp_s).count();
        fresh as f64 / self.samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: f64, label: usize) -> LabeledSample {
        LabeledSample {
            features: vec![t as f32; 4],
            teacher_label: label,
            true_class: label,
            timestamp_s: t,
        }
    }

    #[test]
    fn capacity_is_enforced_fifo() {
        let mut buffer = SampleBuffer::new(3);
        for t in 0..5 {
            buffer.push(sample(t as f64, 0));
        }
        assert_eq!(buffer.len(), 3);
        let times: Vec<f64> = buffer.samples().iter().map(|s| s.timestamp_s).collect();
        assert_eq!(times, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = SampleBuffer::new(0);
    }

    #[test]
    fn reset_clears_everything() {
        let mut buffer = SampleBuffer::new(4);
        buffer.extend((0..4).map(|t| sample(t as f64, t)));
        assert_eq!(buffer.len(), 4);
        buffer.reset();
        assert!(buffer.is_empty());
        assert_eq!(buffer.capacity(), 4);
    }

    #[test]
    fn draw_returns_disjoint_requested_sizes() {
        let mut buffer = SampleBuffer::new(100);
        buffer.extend((0..100).map(|t| sample(t as f64, t % 10)));
        let (train, val) = buffer.draw(60, 20, 7);
        assert_eq!(train.len(), 60);
        assert_eq!(val.len(), 20);
        // Disjoint: no timestamp appears in both.
        for t in &train {
            assert!(!val.iter().any(|v| v.timestamp_s == t.timestamp_s));
        }
    }

    #[test]
    fn draw_is_deterministic_per_seed() {
        let mut buffer = SampleBuffer::new(50);
        buffer.extend((0..50).map(|t| sample(t as f64, t % 5)));
        let a = buffer.draw(30, 10, 42);
        let b = buffer.draw(30, 10, 42);
        let c = buffer.draw(30, 10, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn draw_from_small_buffer_splits_proportionally() {
        let mut buffer = SampleBuffer::new(100);
        buffer.extend((0..10).map(|t| sample(t as f64, 0)));
        let (train, val) = buffer.draw(60, 20, 1);
        assert_eq!(train.len() + val.len(), 10);
        assert!(!val.is_empty(), "validation gets at least one sample");
        assert!(train.len() > val.len());
    }

    #[test]
    fn draw_from_empty_and_singleton_buffers() {
        let buffer = SampleBuffer::new(10);
        let (train, val) = buffer.draw(5, 2, 0);
        assert!(train.is_empty() && val.is_empty());

        let mut buffer = SampleBuffer::new(10);
        buffer.push(sample(1.0, 0));
        let (train, val) = buffer.draw(5, 2, 0);
        assert_eq!(train.len(), 1);
        assert!(val.is_empty());
    }

    #[test]
    fn fresh_fraction_reflects_timestamps() {
        let mut buffer = SampleBuffer::new(10);
        buffer.extend((0..10).map(|t| sample(t as f64, 0)));
        assert!((buffer.fresh_fraction(5.0) - 0.5).abs() < 1e-9);
        assert_eq!(buffer.fresh_fraction(100.0), 0.0);
        assert_eq!(buffer.fresh_fraction(0.0), 1.0);
        assert_eq!(SampleBuffer::new(3).fresh_fraction(0.0), 0.0);
    }
}
