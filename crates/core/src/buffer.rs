//! The fixed-capacity labeled sample buffer.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One sample that has been labeled by the teacher.
///
/// The buffer stores the teacher's label (what the system trains and
/// validates against) alongside the ground-truth class, which only the
/// evaluation harness may look at.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabeledSample {
    /// Feature vector of the object crop.
    pub features: Vec<f32>,
    /// Label assigned by the teacher model.
    pub teacher_label: usize,
    /// Ground-truth class (hidden from the system; used only for reporting).
    pub true_class: usize,
    /// Stream timestamp at which the sample was captured, in seconds.
    pub timestamp_s: f64,
}

/// Fixed-capacity buffer of labeled samples (Section VI-A).
///
/// New samples evict the oldest ones once the capacity is reached; a data
/// drift clears the buffer entirely so stale samples stop polluting
/// retraining. Storage is a ring ([`VecDeque`]), so steady-state pushes are
/// O(1) — evicting the oldest sample never shifts the survivors.
///
/// # Examples
///
/// ```
/// use dacapo_core::{LabeledSample, SampleBuffer};
///
/// let mut buffer = SampleBuffer::new(2);
/// for i in 0..3 {
///     buffer.push(LabeledSample {
///         features: vec![i as f32],
///         teacher_label: 0,
///         true_class: 0,
///         timestamp_s: i as f64,
///     });
/// }
/// assert_eq!(buffer.len(), 2);
/// assert_eq!(buffer.samples().next().unwrap().timestamp_s, 1.0); // oldest was evicted
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampleBuffer {
    capacity: usize,
    // Serialises as a plain array in FIFO order, exactly like the Vec this
    // ring replaced.
    samples: VecDeque<LabeledSample>,
}

impl SampleBuffer {
    /// Creates an empty buffer with capacity `C_b`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "sample buffer capacity must be positive");
        Self { capacity, samples: VecDeque::with_capacity(capacity) }
    }

    /// Buffer capacity `C_b`.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of buffered samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the buffer holds no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Iterates over the buffered samples, oldest first.
    pub fn samples(
        &self,
    ) -> impl DoubleEndedIterator<Item = &LabeledSample> + ExactSizeIterator + '_ {
        self.samples.iter()
    }

    /// Adds one sample, evicting the oldest if the buffer is full. O(1).
    pub fn push(&mut self, sample: LabeledSample) {
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
        }
        self.samples.push_back(sample);
    }

    /// Adds a batch of samples (in order), evicting the oldest as needed.
    pub fn extend(&mut self, samples: impl IntoIterator<Item = LabeledSample>) {
        for sample in samples {
            self.push(sample);
        }
    }

    /// Removes every sample (the drift response of Algorithm 1, line 12).
    pub fn reset(&mut self) {
        self.samples.clear();
    }

    /// Draws disjoint retraining and validation subsets of up to `train` and
    /// `validation` samples (Algorithm 1, line 4). The draw is a seeded
    /// shuffle so experiments are reproducible.
    ///
    /// Requesting zero samples on either side is honoured exactly (a
    /// zero-validation draw never returns validation data and vice versa;
    /// `train + validation == 0` yields two empty sets). If the buffer
    /// holds fewer than `train + validation` samples, the available samples
    /// are split proportionally (when both subsets were requested,
    /// validation gets at least one sample whenever the buffer holds at
    /// least two).
    #[must_use]
    pub fn draw(
        &self,
        train: usize,
        validation: usize,
        seed: u64,
    ) -> (Vec<LabeledSample>, Vec<LabeledSample>) {
        let want_total = train + validation;
        if self.samples.is_empty() || want_total == 0 {
            return (Vec::new(), Vec::new());
        }
        let mut indices: Vec<usize> = (0..self.samples.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        indices.shuffle(&mut rng);

        let available = indices.len();
        let (n_train, n_val) = if available >= want_total {
            (train, validation)
        } else if train == 0 {
            // A validation-only request never returns training samples.
            (0, available)
        } else if validation == 0 {
            // A train-only request never loses a sample to validation.
            (available, 0)
        } else if available >= 2 {
            let n_val = ((available * validation) / want_total).max(1);
            (available - n_val, n_val)
        } else {
            (available, 0)
        };
        let train_set = indices[..n_train].iter().map(|&i| self.samples[i].clone()).collect();
        let val_set =
            indices[n_train..n_train + n_val].iter().map(|&i| self.samples[i].clone()).collect();
        (train_set, val_set)
    }

    /// Fraction of buffered samples captured at or after `timestamp_s`, a
    /// cheap freshness measure used by diagnostics.
    #[must_use]
    pub fn fresh_fraction(&self, timestamp_s: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let fresh = self.samples.iter().filter(|s| s.timestamp_s >= timestamp_s).count();
        fresh as f64 / self.samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: f64, label: usize) -> LabeledSample {
        LabeledSample {
            features: vec![t as f32; 4],
            teacher_label: label,
            true_class: label,
            timestamp_s: t,
        }
    }

    #[test]
    fn capacity_is_enforced_fifo() {
        let mut buffer = SampleBuffer::new(3);
        for t in 0..5 {
            buffer.push(sample(t as f64, 0));
        }
        assert_eq!(buffer.len(), 3);
        let times: Vec<f64> = buffer.samples().map(|s| s.timestamp_s).collect();
        assert_eq!(times, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn steady_state_pushes_are_constant_time() {
        // A regression guard for the old Vec::remove(0) eviction: pushing
        // far past capacity must not shift the whole buffer per sample.
        // 200k pushes into a 4k buffer finish instantly at O(1) per push
        // but would cost ~800M element moves at O(capacity).
        let mut buffer = SampleBuffer::new(4096);
        let started = std::time::Instant::now();
        for t in 0..200_000u32 {
            buffer.push(sample(f64::from(t), 0));
        }
        assert!(started.elapsed().as_secs_f64() < 5.0, "eviction degenerated to O(capacity)");
        assert_eq!(buffer.len(), 4096);
        assert_eq!(buffer.samples().next().unwrap().timestamp_s, f64::from(200_000u32 - 4096));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = SampleBuffer::new(0);
    }

    #[test]
    fn reset_clears_everything() {
        let mut buffer = SampleBuffer::new(4);
        buffer.extend((0..4).map(|t| sample(t as f64, t)));
        assert_eq!(buffer.len(), 4);
        buffer.reset();
        assert!(buffer.is_empty());
        assert_eq!(buffer.capacity(), 4);
    }

    #[test]
    fn draw_returns_disjoint_requested_sizes() {
        let mut buffer = SampleBuffer::new(100);
        buffer.extend((0..100).map(|t| sample(t as f64, t % 10)));
        let (train, val) = buffer.draw(60, 20, 7);
        assert_eq!(train.len(), 60);
        assert_eq!(val.len(), 20);
        // Disjoint: no timestamp appears in both.
        for t in &train {
            assert!(!val.iter().any(|v| v.timestamp_s == t.timestamp_s));
        }
    }

    #[test]
    fn draw_is_deterministic_per_seed() {
        let mut buffer = SampleBuffer::new(50);
        buffer.extend((0..50).map(|t| sample(t as f64, t % 5)));
        let a = buffer.draw(30, 10, 42);
        let b = buffer.draw(30, 10, 42);
        let c = buffer.draw(30, 10, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn draw_from_small_buffer_splits_proportionally() {
        let mut buffer = SampleBuffer::new(100);
        buffer.extend((0..10).map(|t| sample(t as f64, 0)));
        let (train, val) = buffer.draw(60, 20, 1);
        assert_eq!(train.len() + val.len(), 10);
        assert!(!val.is_empty(), "validation gets at least one sample");
        assert!(train.len() > val.len());
    }

    #[test]
    fn draw_from_empty_and_singleton_buffers() {
        let buffer = SampleBuffer::new(10);
        let (train, val) = buffer.draw(5, 2, 0);
        assert!(train.is_empty() && val.is_empty());

        let mut buffer = SampleBuffer::new(10);
        buffer.push(sample(1.0, 0));
        let (train, val) = buffer.draw(5, 2, 0);
        assert_eq!(train.len(), 1);
        assert!(val.is_empty());
    }

    #[test]
    fn drawing_zero_samples_yields_empty_sets() {
        // Regression: the proportional-split branch used to apply .max(1)
        // even for a zero-sample request, returning (available - 1, 1)
        // instead of nothing.
        let mut buffer = SampleBuffer::new(10);
        buffer.extend((0..10).map(|t| sample(t as f64, 0)));
        let (train, val) = buffer.draw(0, 0, 3);
        assert!(train.is_empty(), "a zero-sample draw must not return training data");
        assert!(val.is_empty(), "a zero-sample draw must not return validation data");
        // Zero on one side only is still honoured exactly.
        let (train, val) = buffer.draw(4, 0, 3);
        assert_eq!(train.len(), 4);
        assert!(val.is_empty());
        let (train, val) = buffer.draw(0, 4, 3);
        assert!(train.is_empty());
        assert_eq!(val.len(), 4);
        // …including when the buffer is under-stocked: the proportional
        // split must not conjure a validation sample nobody asked for (or a
        // training sample on a validation-only request).
        let (train, val) = buffer.draw(25, 0, 3);
        assert_eq!(train.len(), 10);
        assert!(val.is_empty(), "a zero-validation draw must never return validation data");
        let (train, val) = buffer.draw(0, 25, 3);
        assert!(train.is_empty(), "a zero-train draw must never return training data");
        assert_eq!(val.len(), 10);
    }

    #[test]
    fn fresh_fraction_reflects_timestamps() {
        let mut buffer = SampleBuffer::new(10);
        buffer.extend((0..10).map(|t| sample(t as f64, 0)));
        assert!((buffer.fresh_fraction(5.0) - 0.5).abs() < 1e-9);
        assert_eq!(buffer.fresh_fraction(100.0), 0.0);
        assert_eq!(buffer.fresh_fraction(0.0), 1.0);
        assert_eq!(SampleBuffer::new(3).fresh_fraction(0.0), 0.0);
    }

    #[test]
    fn fresh_fraction_boundary_is_at_or_after() {
        // Pins the documented inclusive boundary: a sample captured exactly
        // at the cutoff counts as fresh.
        let mut buffer = SampleBuffer::new(4);
        buffer.extend([sample(1.0, 0), sample(2.0, 0), sample(3.0, 0), sample(4.0, 0)]);
        assert!((buffer.fresh_fraction(2.0) - 0.75).abs() < 1e-12, "t = 2.0 itself is fresh");
        assert!((buffer.fresh_fraction(2.0 + 1e-9) - 0.5).abs() < 1e-12);
        assert!((buffer.fresh_fraction(4.0) - 0.25).abs() < 1e-12, "the newest sample counts");
    }

    #[test]
    fn serde_format_matches_the_vec_backed_layout() {
        use serde::Serialize as _;
        let mut buffer = SampleBuffer::new(2);
        for t in 0..3 {
            buffer.push(sample(t as f64, t));
        }
        // {capacity, samples: [...]} with samples as a FIFO-ordered array —
        // the exact shape the old Vec-backed derive produced.
        let value = buffer.to_value();
        let serde::Value::Object(fields) = value else { panic!("expected an object") };
        assert_eq!(fields[0].0, "capacity");
        assert_eq!(fields[0].1, serde::Value::UInt(2));
        assert_eq!(fields[1].0, "samples");
        let serde::Value::Array(samples) = &fields[1].1 else { panic!("expected an array") };
        assert_eq!(samples.len(), 2);
        let expected: Vec<serde::Value> = buffer.samples().map(|s| s.to_value()).collect();
        assert_eq!(samples, &expected, "array order is FIFO (oldest first)");
    }
}
