//! Shared-accelerator arbitration policies and their pluggable registry.
//!
//! When many camera [`Session`](crate::Session)s multiplex a pool of
//! accelerators (see [`Cluster`](crate::Cluster)), someone has to decide how
//! much of an accelerator each session's next step gets. That someone is an
//! [`Arbiter`]: before every labeling or retraining phase, the cluster
//! executor asks the accelerator's arbiter for a **capacity share** in
//! `(0, 1]`, and the step's virtual-time duration is stretched by the
//! reciprocal of that share — the same slowdown model as
//! [`Sharing::TimeShared`](crate::platform::Sharing), generalized across
//! cameras.
//!
//! # Pluggable policies
//!
//! Arbiters are constructed through trait-object factories, mirroring
//! [`crate::sched::register`] and [`crate::platform::register`]: implement
//! [`Arbiter`] and [`ArbiterFactory`], [`register`] the factory, and select
//! it by name via [`Cluster::arbiter`](crate::Cluster::arbiter). Names may
//! carry a `:<params>` suffix that is forwarded to the factory, so one
//! factory can describe a policy family. Three builtins are pre-registered:
//!
//! * `"fair-share"` — every resident session gets `1/n` of its accelerator.
//! * `"priority:<weights>"` — comma-separated positive weights, assigned to
//!   each accelerator's residents by admission order (cycling), shares
//!   proportional to weight (`"priority:3,1"` gives an accelerator's
//!   first-admitted camera three quarters against its second). Keying on
//!   admission order rather than global camera index keeps the weights
//!   meaningful under round-robin placement, which would otherwise group
//!   same-weight cameras onto the same accelerator.
//! * `"drift-first"` / `"drift-first:<boost>"` — sessions currently
//!   recovering from a detected drift weigh `boost` (default 2) against 1
//!   for everyone else: DaCapo Section V's temporal-allocation idea lifted
//!   to fleet scope, so drift recovery finishes sooner at the price of
//!   slowing calm streams.

use crate::registry::{split_params, ParamNames, Registry};
use crate::{CoreError, Result};
use std::sync::{Arc, OnceLock};

/// One resident (admitted, unfinished) session on an accelerator, as an
/// arbiter sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerSession {
    /// The session's camera index within the cluster (the order cameras
    /// were added).
    pub camera_index: usize,
    /// The session's admission order on **its accelerator** (0 = first
    /// admitted there). Weight-cycling policies key on this so round-robin
    /// placement cannot collapse their weight pattern.
    pub admission_index: usize,
    /// Whether the session is currently recovering from a detected drift
    /// (from its drift response until its next retraining phase completes).
    pub recovering: bool,
}

/// Everything an [`Arbiter`] gets to decide one capacity grant.
#[derive(Debug, Clone, Copy)]
pub struct GrantRequest<'a> {
    /// Cluster virtual time of the step in seconds.
    pub now_s: f64,
    /// Index of the accelerator being arbitrated.
    pub accelerator: usize,
    /// Name of the camera requesting capacity.
    pub camera: &'a str,
    /// The requesting camera's cluster index.
    pub camera_index: usize,
    /// The requesting session's admission order on this accelerator.
    pub admission_index: usize,
    /// Whether the requesting session is recovering from a drift.
    pub recovering: bool,
    /// Every resident session on the accelerator, **including** the
    /// requester, in admission order.
    pub residents: &'a [PeerSession],
}

/// A shared-accelerator arbitration policy.
///
/// `Send` is required so per-accelerator event loops can run on
/// [`Cluster`](crate::Cluster) worker threads. Each accelerator gets its own
/// arbiter instance, so implementations may keep per-accelerator state.
pub trait Arbiter: Send {
    /// The policy's display name (used for reporting, e.g. `"fair-share"`).
    fn name(&self) -> String;

    /// Grants the requesting session a capacity share in `(0, 1]` for its
    /// next step. The executor validates the grant and errors on non-finite
    /// or out-of-range shares rather than letting them poison the clock.
    fn grant(&mut self, request: &GrantRequest<'_>) -> f64;
}

/// Trait-object factory for arbitration policies, the extension point of the
/// arbiter registry.
pub trait ArbiterFactory: Send + Sync {
    /// The canonical (case-insensitive) base name the factory registers
    /// under, without any parameter suffix.
    fn name(&self) -> &str;

    /// Builds a fresh arbiter for one accelerator.
    ///
    /// # Errors
    ///
    /// Factories must validate `params` (the `:<suffix>` of the selected
    /// name, if any) and return [`CoreError::InvalidConfig`] for malformed
    /// parameters rather than panicking.
    fn build(&self, params: Option<&str>) -> Result<Box<dyn Arbiter>>;
}

// --------------------------------------------------------------------------
// Builtin policies
// --------------------------------------------------------------------------

/// `"fair-share"`: every resident session gets an equal slice.
struct FairShare;

impl Arbiter for FairShare {
    fn name(&self) -> String {
        "fair-share".to_string()
    }

    fn grant(&mut self, request: &GrantRequest<'_>) -> f64 {
        1.0 / request.residents.len().max(1) as f64
    }
}

struct FairShareFactory;

impl ArbiterFactory for FairShareFactory {
    fn name(&self) -> &str {
        "fair-share"
    }

    fn build(&self, params: Option<&str>) -> Result<Box<dyn Arbiter>> {
        if let Some(params) = params {
            return Err(CoreError::InvalidConfig {
                reason: format!("arbiter 'fair-share' takes no parameters, got ':{params}'"),
            });
        }
        Ok(Box::new(FairShare))
    }
}

/// `"priority:<weights>"`: static weights cycling over each accelerator's
/// residents in admission order.
struct Priority {
    weights: Vec<f64>,
}

impl Priority {
    fn weight(&self, admission_index: usize) -> f64 {
        self.weights[admission_index % self.weights.len()]
    }
}

impl Arbiter for Priority {
    fn name(&self) -> String {
        let weights: Vec<String> = self.weights.iter().map(|w| format!("{w}")).collect();
        format!("priority:{}", weights.join(","))
    }

    fn grant(&mut self, request: &GrantRequest<'_>) -> f64 {
        let total: f64 = request.residents.iter().map(|r| self.weight(r.admission_index)).sum();
        if total <= 0.0 {
            return 1.0;
        }
        self.weight(request.admission_index) / total
    }
}

struct PriorityFactory;

impl ArbiterFactory for PriorityFactory {
    fn name(&self) -> &str {
        "priority"
    }

    fn build(&self, params: Option<&str>) -> Result<Box<dyn Arbiter>> {
        let raw = params.ok_or_else(|| CoreError::InvalidConfig {
            reason: "arbiter 'priority' needs weights, e.g. 'priority:3,1'".into(),
        })?;
        let weights: Vec<f64> = raw
            .split(',')
            .map(|w| {
                let weight: f64 = w.trim().parse().map_err(|_| CoreError::InvalidConfig {
                    reason: format!("priority weight '{w}' is not a number"),
                })?;
                if !weight.is_finite() || weight <= 0.0 {
                    return Err(CoreError::InvalidConfig {
                        reason: format!(
                            "priority weights must be finite and positive, got {weight}"
                        ),
                    });
                }
                Ok(weight)
            })
            .collect::<Result<_>>()?;
        if weights.is_empty() {
            return Err(CoreError::InvalidConfig {
                reason: "arbiter 'priority' needs at least one weight".into(),
            });
        }
        Ok(Box::new(Priority { weights }))
    }
}

/// `"drift-first[:<boost>]"`: sessions recovering from a drift weigh `boost`
/// against 1 for calm sessions.
struct DriftFirst {
    boost: f64,
}

impl Arbiter for DriftFirst {
    fn name(&self) -> String {
        format!("drift-first:{}", self.boost)
    }

    fn grant(&mut self, request: &GrantRequest<'_>) -> f64 {
        let weight = |recovering: bool| if recovering { self.boost } else { 1.0 };
        let total: f64 = request.residents.iter().map(|r| weight(r.recovering)).sum();
        if total <= 0.0 {
            return 1.0;
        }
        weight(request.recovering) / total
    }
}

struct DriftFirstFactory;

impl ArbiterFactory for DriftFirstFactory {
    fn name(&self) -> &str {
        "drift-first"
    }

    fn build(&self, params: Option<&str>) -> Result<Box<dyn Arbiter>> {
        let boost = match params {
            None => 2.0,
            Some(raw) => raw.trim().parse::<f64>().map_err(|_| CoreError::InvalidConfig {
                reason: format!("drift-first expects a numeric boost, got ':{raw}'"),
            })?,
        };
        if !boost.is_finite() || boost < 1.0 {
            return Err(CoreError::InvalidConfig {
                reason: format!("drift-first boost must be finite and at least 1, got {boost}"),
            });
        }
        Ok(Box::new(DriftFirst { boost }))
    }
}

// --------------------------------------------------------------------------
// Registry
// --------------------------------------------------------------------------

/// The global arbiter registry, seeded with the builtin policies; storage
/// and lookup rules live in [`crate::registry`].
fn registry() -> &'static Registry<dyn ArbiterFactory> {
    static REGISTRY: OnceLock<Registry<dyn ArbiterFactory>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let builtins: [Arc<dyn ArbiterFactory>; 3] =
            [Arc::new(FairShareFactory), Arc::new(PriorityFactory), Arc::new(DriftFirstFactory)];
        Registry::new(
            "arbiter factory",
            ParamNames::Split,
            &[],
            builtins.into_iter().map(|f| (f.name().to_string(), f)).collect(),
        )
    })
}

/// Registers (or replaces) an arbiter factory under its case-insensitive
/// [`ArbiterFactory::name`].
///
/// # Panics
///
/// Panics if the factory's name contains `':'` — the colon introduces the
/// parameter suffix during lookup, so such a name could never be resolved.
pub fn register(factory: Arc<dyn ArbiterFactory>) {
    let name = factory.name().to_string();
    registry().register(&name, factory);
}

/// Looks up an arbiter factory by case-insensitive name. A `:<params>`
/// suffix, if present, is ignored for the lookup (`by_name("priority:3,1")`
/// resolves the `"priority"` factory).
#[must_use]
pub fn by_name(name: &str) -> Option<Arc<dyn ArbiterFactory>> {
    registry().by_name(name)
}

/// The base names of every registered arbitration policy, sorted.
#[must_use]
pub fn registered_names() -> Vec<String> {
    registry().names()
}

/// Instantiates the arbiter selected by `name` (with optional `:<params>`
/// suffix) for one accelerator.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] for an unregistered name or
/// malformed parameters.
pub fn create(name: &str) -> Result<Box<dyn Arbiter>> {
    let (base, params) = split_params(name);
    let factory = by_name(base).ok_or_else(|| CoreError::InvalidConfig {
        reason: format!(
            "unknown arbiter '{base}'; registered arbiters: {}",
            registered_names().join(", ")
        ),
    })?;
    factory.build(params)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peers(flags: &[bool]) -> Vec<PeerSession> {
        flags
            .iter()
            .enumerate()
            .map(|(index, &recovering)| PeerSession {
                camera_index: index,
                admission_index: index,
                recovering,
            })
            .collect()
    }

    fn request<'a>(
        admission_index: usize,
        recovering: bool,
        residents: &'a [PeerSession],
    ) -> GrantRequest<'a> {
        GrantRequest {
            now_s: 0.0,
            accelerator: 0,
            camera: "cam",
            camera_index: admission_index,
            admission_index,
            recovering,
            residents,
        }
    }

    #[test]
    fn fair_share_splits_evenly() {
        let mut arbiter = create("fair-share").unwrap();
        let residents = peers(&[false, false, false, false]);
        let share = arbiter.grant(&request(0, false, &residents));
        assert!((share - 0.25).abs() < 1e-12);
        let solo = peers(&[false]);
        assert!((arbiter.grant(&request(0, false, &solo)) - 1.0).abs() < 1e-12);
        assert!(create("fair-share:2").is_err(), "fair-share takes no parameters");
    }

    #[test]
    fn priority_weights_cycle_by_admission_order() {
        let mut arbiter = create("priority:3,1").unwrap();
        let residents = peers(&[false, false]);
        // The first-admitted resident carries weight 3, the second weight 1.
        assert!((arbiter.grant(&request(0, false, &residents)) - 0.75).abs() < 1e-12);
        assert!((arbiter.grant(&request(1, false, &residents)) - 0.25).abs() < 1e-12);
        // The third admission cycles back to weight 3.
        let three = peers(&[false, false, false]);
        let share = arbiter.grant(&request(2, false, &three));
        assert!((share - 3.0 / 7.0).abs() < 1e-12);
        assert_eq!(arbiter.name(), "priority:3,1");
        // Weights key on the accelerator-local admission order, not the
        // cluster-wide camera index, so round-robin placement (which puts
        // cameras 0 and 2 together on a 2-accelerator cluster) cannot
        // collapse a 3:1 weighting into fair-share.
        let round_robin = [
            PeerSession { camera_index: 0, admission_index: 0, recovering: false },
            PeerSession { camera_index: 2, admission_index: 1, recovering: false },
        ];
        let first = GrantRequest {
            now_s: 0.0,
            accelerator: 0,
            camera: "cam-0",
            camera_index: 0,
            admission_index: 0,
            recovering: false,
            residents: &round_robin,
        };
        assert!((arbiter.grant(&first) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn priority_rejects_malformed_weights() {
        assert!(create("priority").is_err(), "priority needs weights");
        assert!(create("priority:").is_err());
        assert!(create("priority:3,zero").is_err());
        assert!(create("priority:0").is_err());
        assert!(create("priority:-1,2").is_err());
        assert!(create("priority:NaN").is_err());
        assert!(create("priority: 2 , 1 ").is_ok(), "whitespace around weights is fine");
    }

    #[test]
    fn drift_first_boosts_recovering_sessions() {
        let mut arbiter = create("drift-first").unwrap();
        let residents = peers(&[true, false]);
        // Recovering session weighs 2 against 1: 2/3 vs 1/3.
        assert!((arbiter.grant(&request(0, true, &residents)) - 2.0 / 3.0).abs() < 1e-12);
        assert!((arbiter.grant(&request(1, false, &residents)) - 1.0 / 3.0).abs() < 1e-12);
        // With nobody recovering it degenerates to fair-share.
        let calm = peers(&[false, false]);
        assert!((arbiter.grant(&request(0, false, &calm)) - 0.5).abs() < 1e-12);
        // The boost is tunable.
        let mut strong = create("drift-first:4").unwrap();
        assert!((strong.grant(&request(0, true, &residents)) - 0.8).abs() < 1e-12);
        assert!(create("drift-first:0.5").is_err(), "boosts below 1 would invert the policy");
        assert!(create("drift-first:inf").is_err());
        assert!(create("drift-first:fast").is_err());
    }

    #[test]
    fn registry_resolves_case_insensitively_and_lists_builtins() {
        assert!(by_name("FAIR-SHARE").is_some());
        assert!(by_name("Priority:9").is_some());
        assert!(by_name("no-such-arbiter").is_none());
        let names = registered_names();
        for builtin in ["fair-share", "priority", "drift-first"] {
            assert!(names.contains(&builtin.to_string()), "{builtin} missing from {names:?}");
        }
        let err = match create("no-such-arbiter") {
            Err(err) => err,
            Ok(_) => panic!("unknown arbiter must not resolve"),
        };
        assert!(err.to_string().contains("no-such-arbiter"), "{err}");
        assert!(err.to_string().contains("registered arbiters"), "{err}");
    }

    #[test]
    fn external_factories_plug_in_through_the_registry() {
        /// A policy no builtin knows about: everyone always gets 100%.
        struct Oversubscribe;
        impl Arbiter for Oversubscribe {
            fn name(&self) -> String {
                "oversubscribe".to_string()
            }
            fn grant(&mut self, _request: &GrantRequest<'_>) -> f64 {
                1.0
            }
        }
        struct OversubscribeFactory;
        impl ArbiterFactory for OversubscribeFactory {
            fn name(&self) -> &str {
                "oversubscribe"
            }
            fn build(&self, _params: Option<&str>) -> Result<Box<dyn Arbiter>> {
                Ok(Box::new(Oversubscribe))
            }
        }

        register(Arc::new(OversubscribeFactory));
        let mut arbiter = create("oversubscribe").unwrap();
        let residents = peers(&[false, false, false]);
        assert!((arbiter.grant(&request(1, false, &residents)) - 1.0).abs() < 1e-12);
    }
}
