//! The re-entrant continuous-learning execution engine.
//!
//! [`Session`] is the steppable heart of the runtime: one camera stream
//! walking one drifting scenario. Each [`Session::step`] call executes at
//! most one temporal phase and returns a [`SessionEvent`] describing what
//! just happened, so callers can observe mid-run state, interleave many
//! cameras (see [`Fleet`](crate::Fleet)), or drive custom control loops —
//! none of which the old one-shot `ClSimulator::run()` allowed.
//!
//! For push-style consumption, [`Session::run_with`] drives the session to
//! completion while forwarding every event to a [`SimObserver`].
//!
//! # Snapshots
//!
//! A session is an explicit state/behavior split: everything mutable lives
//! in fields that [`Session::snapshot`] can serialise into a versioned
//! [`SessionSnapshot`], and everything behavioral (the frame stream, the
//! platform capability sheet, the scheduler *instance*) is reconstructed
//! from the configuration on [`Session::restore`]. Restoring is
//! **bit-identical**: a session snapshotted at any step and restored — even
//! from JSON text in another process — continues with exactly the events,
//! timeline, and final [`SimResult`] of the uninterrupted run. Stateful
//! schedulers participate through
//! [`Scheduler::state`](crate::sched::Scheduler::state) /
//! [`Scheduler::restore_state`](crate::sched::Scheduler::restore_state),
//! and the teacher's RNG and the stream's [`StreamCursor`] are captured
//! exactly.

use crate::buffer::{LabeledSample, SampleBuffer};
use crate::config::SimConfig;
use crate::edge::{EdgeAccum, EdgeTier, EdgeTierState, LabelRoute};
use crate::platform::PlatformRates;
use crate::sched::{Action, Scheduler, SchedulerContext};
use crate::sim::{PhaseKind, PhaseRecord, SimResult};
use crate::student::StudentModel;
use crate::{CoreError, Result};
use dacapo_datagen::{CenterCache, Frame, FrameStream, StreamCursor};
use dacapo_dnn::{Mlp, TeacherOracle, TrainScratch};
use serde::{Deserialize, Serialize, Value};
use std::collections::VecDeque;

/// Smallest phase duration the engine will schedule, to guarantee forward
/// progress even when a platform rate is enormous.
pub(crate) const MIN_PHASE_SECONDS: f64 = 0.05;

/// What one [`Session::step`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SessionEvent {
    /// One temporal phase (labeling, retraining, or idling) completed.
    Phase(PhaseRecord),
    /// The scheduler declared data drift and reset the sample buffer.
    /// `response_index` counts drift responses from 1.
    Drift {
        /// Simulated time of the drift response in seconds.
        at_s: f64,
        /// Ordinal of this drift response (1-based).
        response_index: usize,
    },
    /// A fresh accuracy measurement was appended to the timeline.
    Accuracy {
        /// Simulated time of the measurement in seconds.
        at_s: f64,
        /// Measured end-to-end accuracy (already discounted for dropped
        /// frames).
        accuracy: f64,
    },
    /// The scenario is over. Subsequent `step` calls keep returning this.
    Finished,
}

/// Observer hooks for tapping a session's event stream without owning the
/// stepping loop. All methods default to no-ops, so implementors override
/// only what they need — and new hooks can be added without breaking
/// existing observers.
///
/// Besides the per-session event hooks, the trait carries the cluster-level
/// hooks of the window-barrier sampling contract (see the crate docs'
/// *Observability* section): step attribution, barrier notifications,
/// per-camera/per-accelerator samples, share admissions, offload routes,
/// churn, and uplink transfers. Observed executions are single-threaded, so
/// implementations need no internal synchronisation.
pub trait SimObserver {
    /// Called after each completed phase.
    fn on_phase(&mut self, _phase: &PhaseRecord) {}

    /// Called when the scheduler responds to detected drift.
    fn on_drift(&mut self, _at_s: f64, _response_index: usize) {}

    /// Called for every accuracy measurement appended to the timeline.
    fn on_accuracy(&mut self, _at_s: f64, _accuracy: f64) {}

    /// Called once when the scenario completes.
    fn on_finished(&mut self) {}

    /// Called once for **every** forwarded [`SessionEvent`], before the
    /// event's specific hook. The catch-all: an observer that only
    /// implements `on_event` can never lose an event kind added after it
    /// was written.
    fn on_event(&mut self, _event: &SessionEvent) {}

    /// Called by the cluster executor before each step's event burst,
    /// identifying the camera (name and admission index) and the
    /// accelerator that produced the burst. Standalone sessions never call
    /// this; cluster runs call it before every `on_event`/`on_phase` group.
    fn on_step_context(&mut self, _camera: &str, _camera_index: usize, _accelerator: usize) {}

    /// Called at each cluster window barrier after that window's label
    /// exchange, churn, and offload routing completed. `window_index` is
    /// the window that just closed; `boundary_s` its end in cluster time.
    fn on_window_barrier(&mut self, _window_index: usize, _boundary_s: f64) {}

    /// Called once per live camera (in admission-index order) right after
    /// `on_window_barrier`, with that camera's sampled state.
    fn on_window_sample(&mut self, _sample: &WindowSample<'_>) {}

    /// Called once per accelerator (in index order) after the per-camera
    /// window samples, with that accelerator's sampled state.
    fn on_accelerator_sample(&mut self, _sample: &AcceleratorSample) {}

    /// Called when a share policy admits labels from `exporter` into
    /// `importer` at a window barrier (only for admissions > 0 samples).
    fn on_share(&mut self, _exporter: &str, _importer: &str, _admitted: usize, _boundary_s: f64) {}

    /// Called when the offload policy routes a camera's labeling for the
    /// window opening at `boundary_s` (`window_index` is that new window).
    fn on_offload_route(
        &mut self,
        _camera: &str,
        _route: LabelRoute,
        _window_index: usize,
        _boundary_s: f64,
    ) {
    }

    /// Called when a churn join places (or orphans — `accelerator` is
    /// `None`) a camera at a window barrier.
    fn on_churn_join(&mut self, _camera: &str, _accelerator: Option<usize>, _at_s: f64) {}

    /// Called when a churn leave removes a camera at a window barrier.
    fn on_churn_leave(&mut self, _camera: &str, _at_s: f64) {}

    /// Called when a churn drain closes an accelerator at a window barrier.
    fn on_churn_drain(&mut self, _accelerator: usize, _at_s: f64) {}

    /// Called per session migrated off a drained accelerator:
    /// `to_accelerator` is its new home, or `None` when the fleet had no
    /// surviving accelerator and the camera was orphaned.
    fn on_migration(
        &mut self,
        _camera: &str,
        _from_accelerator: usize,
        _to_accelerator: Option<usize>,
        _at_s: f64,
    ) {
    }

    /// Called when a session ships labeling work over its uplink: `bytes`
    /// uplink bytes and `labels` cloud-labeling requests accounted at
    /// virtual time `at_s`. Standalone sessions report an empty camera name
    /// (the observer's current context applies); cluster runs pass the
    /// owning camera's name.
    fn on_uplink_transfer(&mut self, _camera: &str, _at_s: f64, _bytes: u64, _labels: usize) {}
}

/// The do-nothing observer.
impl SimObserver for () {}

/// One camera's state sampled at a cluster window barrier, handed to
/// [`SimObserver::on_window_sample`]. Samples are taken single-threaded in
/// camera admission-index order, so the stream is deterministic at any
/// worker-thread count. Label counters are cumulative over the run; the
/// per-window deltas are the consumer's to compute.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSample<'a> {
    /// The window that just closed.
    pub window_index: usize,
    /// The barrier's cluster time (end of `window_index`) in seconds.
    pub boundary_s: f64,
    /// The sampled camera's name.
    pub camera: &'a str,
    /// The sampled camera's admission index in the cluster.
    pub camera_index: usize,
    /// The accelerator currently hosting the camera.
    pub accelerator: usize,
    /// The session-local virtual clock (unstretched by arbitration).
    pub now_s: f64,
    /// The most recent accuracy measurement, if any was taken yet.
    pub accuracy: Option<f64>,
    /// Labeled samples currently resident in the sample buffer.
    pub buffer_len: usize,
    /// Fraction of buffered samples no older than one window on the
    /// session's own clock (see [`SampleBuffer::fresh_fraction`]).
    ///
    /// [`SampleBuffer::fresh_fraction`]: crate::SampleBuffer::fresh_fraction
    pub buffer_fresh_fraction: f64,
    /// Cumulative locally teacher-labeled samples (0 without an edge tier).
    pub labels_local: u64,
    /// Cumulative cloud-labeled samples (0 without an edge tier).
    pub labels_cloud: u64,
    /// Cloud labels shipped but not yet arrived into the buffer.
    pub in_flight_cloud_labels: usize,
}

/// One accelerator's state sampled at a cluster window barrier, handed to
/// [`SimObserver::on_accelerator_sample`] after the per-camera
/// [`WindowSample`]s. Busy time is cumulative over the run.
#[derive(Debug, Clone, PartialEq)]
pub struct AcceleratorSample {
    /// The window that just closed.
    pub window_index: usize,
    /// The barrier's cluster time (end of `window_index`) in seconds.
    pub boundary_s: f64,
    /// The sampled accelerator's index.
    pub accelerator: usize,
    /// Cumulative arbitrated compute seconds executed so far.
    pub busy_s: f64,
    /// `busy_s / boundary_s` — the utilization up to this barrier.
    pub utilization: f64,
    /// Currently resident (live) sessions.
    pub live_sessions: usize,
    /// Sessions waiting in the admission queue.
    pub queued_sessions: usize,
    /// Entries in the accelerator's event heap (the queue depth of the
    /// event loop itself).
    pub event_depth: usize,
    /// Whether a churn drain has closed this accelerator.
    pub drained: bool,
}

/// A re-entrant, steppable continuous-learning run: one camera stream, one
/// scenario, one scheduling policy.
///
/// # Examples
///
/// ```no_run
/// use dacapo_core::{Session, SessionEvent, SimConfig};
/// use dacapo_datagen::Scenario;
/// use dacapo_dnn::zoo::ModelPair;
///
/// # fn main() -> Result<(), dacapo_core::CoreError> {
/// let config = SimConfig::builder(Scenario::s1(), ModelPair::ResNet18Wrn50).build()?;
/// let mut session = Session::new(config)?;
/// loop {
///     match session.step()? {
///         SessionEvent::Drift { at_s, .. } => println!("drift response at {at_s:.0} s"),
///         SessionEvent::Finished => break,
///         _ => {}
///     }
/// }
/// let result = session.into_result();
/// println!("mean accuracy {:.1}%", result.mean_accuracy * 100.0);
/// # Ok(())
/// # }
/// ```
pub struct Session {
    config: SimConfig,
    // snapshot: skip(stream) — behavior, rebuilt deterministically from
    // config.scenario + config.stream on restore
    stream: FrameStream,
    student: StudentModel,
    teacher: TeacherOracle,
    buffer: SampleBuffer,
    // snapshot: as(scheduler_state) — the trait object's name + opaque state
    // ride as a SchedulerState; the factory rebuilds the scheduler on restore
    scheduler: Box<dyn Scheduler>,
    // snapshot: skip(platform) — behavior, re-resolved from config.platform
    // through the platform registry on restore
    platform: PlatformRates,
    // snapshot: skip(duration_s) — derived: the scenario's total duration,
    // recomputed from config.scenario on restore
    duration_s: f64,
    // snapshot: skip(drop_rate) — derived from config (sampling rate vs
    // frame rate) and recomputed on restore
    drop_rate: f64,
    // snapshot: as(stream_cursor) — position within the regenerated stream
    cursor: StreamCursor,
    now_s: f64,
    next_measure_s: f64,
    timeline: Vec<(f64, f64)>,
    phases: Vec<PhaseRecord>,
    last_validation: Option<f64>,
    last_labeling: Option<f64>,
    drift_responses: usize,
    phase_seed: u64,
    pending: VecDeque<SessionEvent>,
    finished: bool,
    record_labels: bool,
    fresh_labels: Vec<LabeledSample>,
    edge: Option<EdgeTier>,
    // snapshot: skip(scratch) — a reusable training/evaluation arena; it
    // carries capacity, never numeric state, so a fresh arena on restore is
    // bit-identical (property-tested)
    scratch: TrainScratch,
    // snapshot: skip(staged_uplink_before) — transient observer baseline for
    // a phase pre-executed by the cluster's batched-retraining dispatch;
    // consumed when that phase's events pop, before any barrier or snapshot
    staged_uplink_before: Option<(u64, u64)>,
    // snapshot: skip(center_cache) — a memo table for the stream's pure
    // class-centre derivation; cached and fresh centres are bit-identical
    // (property-tested in datagen), so a cold cache on restore changes
    // nothing
    center_cache: CenterCache,
}

/// A retraining phase whose schedule is fully decided but whose gradient
/// work has not run yet: the output of [`Session::stage_phase`], consumed by
/// the cluster executor's stacked dispatch and then completed with
/// [`Session::finish_staged_retrain`]. Between the two calls the session
/// must not be stepped or snapshotted.
#[derive(Debug)]
pub(crate) struct StagedRetrain {
    /// The drawn training batch (teacher-labeled).
    pub(crate) train: Vec<LabeledSample>,
    /// The drawn validation batch, evaluated after the weights update.
    pub(crate) validation: Vec<LabeledSample>,
    /// Training epochs, already clamped to at least one.
    pub(crate) epochs: usize,
    /// Sample presentations charged to the platform (`train.len() × epochs`).
    presentations: usize,
    /// The phase's simulated duration in seconds.
    phase_duration: f64,
}

/// The version tag of the public snapshot format. Bumped whenever the
/// serialised shape of [`SessionSnapshot`] changes incompatibly;
/// [`Session::restore`] rejects snapshots from other versions rather than
/// misreading them (the compatibility rule: same version restores
/// bit-identically, anything else is refused loudly). Version 2 added the
/// edge–cloud tier state ([`SessionSnapshot::edge`]).
pub const SNAPSHOT_VERSION: u32 = 2;

/// A serialisable checkpoint of a running [`Session`]: the complete mutable
/// state — configuration, student weights, sample buffer, teacher RNG,
/// scheduler state, stream cursor, and the partial timeline — captured by
/// [`Session::snapshot`] and consumed by [`Session::restore`].
///
/// The format is versioned ([`SNAPSHOT_VERSION`]) and serde-able: write it
/// out with [`SessionSnapshot::to_json`], read it back with
/// [`SessionSnapshot::from_json`], and the restored session is bit-identical
/// to the uninterrupted original (property-tested). Snapshots are also the
/// unit of live migration in the cluster executor: when an accelerator
/// drains, its resident sessions snapshot-migrate to the survivors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSnapshot {
    /// Snapshot format version ([`SNAPSHOT_VERSION`] at capture time).
    pub version: u32,
    /// The configuration the session was built from; restoring rebuilds the
    /// stream, platform sheet, and scheduler instance from it.
    pub config: SimConfig,
    /// The student model, weights and all.
    pub student: StudentModel,
    /// The teacher oracle, including its exact RNG state.
    pub teacher: TeacherOracle,
    /// The labeled sample buffer.
    pub buffer: SampleBuffer,
    /// The scheduling policy's mutable decision state
    /// ([`Value::Null`] for stateless policies; see
    /// [`Scheduler::state`](crate::sched::Scheduler::state)). The policy
    /// *instance* is rebuilt from the configuration's
    /// [`SchedulerSpec`](crate::sched::SchedulerSpec) through the registry
    /// and handed this state — how a `Box<dyn Scheduler>` survives a serde
    /// round trip without duplicating its spec in the format.
    pub scheduler_state: Value,
    /// The frame stream's resumable read position.
    pub stream_cursor: StreamCursor,
    /// Simulated time reached so far, in seconds.
    pub now_s: f64,
    /// Next accuracy-measurement time, in seconds.
    pub next_measure_s: f64,
    /// The accuracy timeline recorded so far.
    pub timeline: Vec<(f64, f64)>,
    /// The phases executed so far.
    pub phases: Vec<PhaseRecord>,
    /// Validation accuracy after the most recent retraining, if any.
    pub last_validation: Option<f64>,
    /// Student accuracy on the most recently labeled batch, if any.
    pub last_labeling: Option<f64>,
    /// Drift responses issued so far.
    pub drift_responses: usize,
    /// The per-phase draw seed's current value.
    pub phase_seed: u64,
    /// Events produced but not yet returned by [`Session::step`].
    pub pending: Vec<SessionEvent>,
    /// Whether the scenario has completed.
    pub finished: bool,
    /// Whether the session records freshly labeled batches for export.
    pub record_labels: bool,
    /// Recorded label batches not yet drained by the cluster executor.
    pub fresh_labels: Vec<LabeledSample>,
    /// The edge–cloud tier's mutable state (cloud teacher RNG, in-flight
    /// labels, uplink meters), present exactly when the configuration
    /// carries an [`EdgeConfig`](crate::edge::EdgeConfig). The uplink model
    /// itself is behavior and is re-resolved from the configuration through
    /// the uplink registry on restore.
    pub edge: Option<EdgeTierState>,
}

impl SessionSnapshot {
    /// Serialises the snapshot as pretty-printed JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        // lint: allow(panic) — every snapshot field serialises through the
        // derived impls; there is no fallible custom Serialize in the tree
        serde_json::to_string_pretty(self).expect("snapshot serialisation is infallible")
    }

    /// Parses a snapshot from JSON text (the inverse of
    /// [`SessionSnapshot::to_json`]).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Snapshot`] for malformed JSON or a tree that
    /// does not match the snapshot shape. The version tag is checked by
    /// [`Session::restore`], not here, so tooling can still inspect
    /// same-shape snapshots from other versions.
    pub fn from_json(text: &str) -> Result<Self> {
        serde_json::from_str(text)
            .map_err(|e| CoreError::Snapshot { reason: format!("malformed snapshot JSON: {e}") })
    }
}

impl Session {
    /// Builds a session: constructs the stream, pre-trains the student on the
    /// general (mixed-context) distribution, and instantiates the scheduler
    /// through the policy registry.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the configuration is invalid
    /// or names an unregistered scheduling policy.
    pub fn new(config: SimConfig) -> Result<Self> {
        config.validate()?;
        // Resolve the policy and platform before the (expensive) pretraining
        // below, so an unregistered scheduler or platform name fails fast.
        let scheduler = config.scheduler.create(&config.hyper)?;
        let platform = config.platform_rates()?;
        let stream = FrameStream::new(&config.scenario, config.stream);
        let mut student = StudentModel::new(
            config.stream.feature_dim,
            platform.inference_quant(),
            platform.training_quant(),
            config.hyper.learning_rate,
            config.hyper.batch_size,
            config.seed,
        )?;
        let teacher = TeacherOracle::new(
            dacapo_datagen::NUM_CLASSES,
            config.teacher_accuracy,
            config.seed.wrapping_add(1),
        );
        let edge = config
            .edge
            .as_ref()
            .map(|edge_config| {
                EdgeTier::new(
                    edge_config,
                    dacapo_datagen::NUM_CLASSES,
                    config.stream.feature_dim,
                    config.seed.wrapping_add(2),
                )
            })
            .transpose()?;

        // Pre-deployment training on the "general dataset": samples spread
        // uniformly over the whole scenario (every context appears), labeled
        // with ground truth, as the paper assumes pre-trained models.
        let mut center_cache = CenterCache::new();
        if config.pretrain_samples > 0 {
            let stride = (stream.num_frames() / config.pretrain_samples.max(1) as u64).max(1);
            let pretrain: Vec<LabeledSample> = (0..stream.num_frames())
                .step_by(stride as usize)
                .map(|i| {
                    let frame = stream.frame_at_cached(i, &mut center_cache);
                    LabeledSample {
                        features: frame.sample.features,
                        teacher_label: frame.sample.true_class,
                        true_class: frame.sample.true_class,
                        timestamp_s: frame.timestamp_s,
                    }
                })
                .collect();
            student.retrain(&pretrain, 2)?;
        }

        let buffer = SampleBuffer::new(config.hyper.buffer_capacity);
        let duration_s = config.scenario.duration_s();
        let drop_rate = platform.frame_drop_rate(config.stream.fps);
        let phase_seed = config.seed;
        let cursor = stream.cursor();
        Ok(Self {
            config,
            stream,
            student,
            teacher,
            buffer,
            scheduler,
            platform,
            duration_s,
            drop_rate,
            cursor,
            now_s: 0.0,
            next_measure_s: 0.0,
            timeline: Vec::new(),
            phases: Vec::new(),
            last_validation: None,
            last_labeling: None,
            drift_responses: 0,
            phase_seed,
            pending: VecDeque::new(),
            finished: false,
            record_labels: false,
            fresh_labels: Vec::new(),
            edge,
            scratch: TrainScratch::new(),
            center_cache,
            staged_uplink_before: None,
        })
    }

    /// Captures the session's complete mutable state as a serialisable,
    /// versioned [`SessionSnapshot`]. The session keeps running; the
    /// snapshot is an independent copy.
    ///
    /// [`Session::restore`] rebuilds a session from the snapshot that is
    /// bit-identical to this one — same onward events, same final
    /// [`SimResult`] — even after a JSON round trip in another process.
    #[must_use]
    pub fn snapshot(&self) -> SessionSnapshot {
        SessionSnapshot {
            version: SNAPSHOT_VERSION,
            config: self.config.clone(),
            student: self.student.clone(),
            teacher: self.teacher.clone(),
            buffer: self.buffer.clone(),
            scheduler_state: self.scheduler.state(),
            stream_cursor: self.cursor,
            now_s: self.now_s,
            next_measure_s: self.next_measure_s,
            timeline: self.timeline.clone(),
            phases: self.phases.clone(),
            last_validation: self.last_validation,
            last_labeling: self.last_labeling,
            drift_responses: self.drift_responses,
            phase_seed: self.phase_seed,
            pending: self.pending.iter().copied().collect(),
            finished: self.finished,
            record_labels: self.record_labels,
            fresh_labels: self.fresh_labels.clone(),
            edge: self.edge.as_ref().map(|tier| tier.state.clone()),
        }
    }

    /// Rebuilds a session from a [`SessionSnapshot`], resuming exactly where
    /// [`Session::snapshot`] left off. Behavioral components are
    /// reconstructed from the snapshot's configuration — the stream and
    /// platform sheet are pure functions of it, and the scheduler instance
    /// is re-created through the policy registry and handed its captured
    /// state — while the mutable state (student weights, buffer, teacher
    /// RNG, timeline, cursor) is adopted as-is. No pre-training runs.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Snapshot`] for a snapshot from a different
    /// [`SNAPSHOT_VERSION`], [`CoreError::InvalidConfig`] when the embedded
    /// configuration no longer validates or names an unregistered scheduler
    /// or platform, and propagates scheduler-state restoration failures.
    pub fn restore(snapshot: SessionSnapshot) -> Result<Self> {
        if snapshot.version != SNAPSHOT_VERSION {
            return Err(CoreError::Snapshot {
                reason: format!(
                    "snapshot format version {} is not supported (this runtime reads version \
                     {SNAPSHOT_VERSION})",
                    snapshot.version
                ),
            });
        }
        let config = snapshot.config;
        config.validate()?;
        let mut scheduler = config.scheduler.create(&config.hyper)?;
        scheduler.restore_state(&snapshot.scheduler_state)?;
        let platform = config.platform_rates()?;
        let edge = match (config.edge.as_ref(), snapshot.edge) {
            (Some(edge_config), Some(state)) => {
                Some(EdgeTier::resume(edge_config, config.stream.feature_dim, state)?)
            }
            (None, None) => None,
            (Some(_), None) => {
                return Err(CoreError::Snapshot {
                    reason: "the configuration has an edge tier but the snapshot carries no \
                             edge state"
                        .into(),
                });
            }
            (None, Some(_)) => {
                return Err(CoreError::Snapshot {
                    reason: "the snapshot carries edge-tier state but the configuration has no \
                             edge tier"
                        .into(),
                });
            }
        };
        let stream = FrameStream::new(&config.scenario, config.stream);
        let duration_s = config.scenario.duration_s();
        let drop_rate = platform.frame_drop_rate(config.stream.fps);
        Ok(Self {
            config,
            stream,
            student: snapshot.student,
            teacher: snapshot.teacher,
            buffer: snapshot.buffer,
            scheduler,
            platform,
            duration_s,
            drop_rate,
            cursor: snapshot.stream_cursor,
            now_s: snapshot.now_s,
            next_measure_s: snapshot.next_measure_s,
            timeline: snapshot.timeline,
            phases: snapshot.phases,
            last_validation: snapshot.last_validation,
            last_labeling: snapshot.last_labeling,
            drift_responses: snapshot.drift_responses,
            phase_seed: snapshot.phase_seed,
            pending: snapshot.pending.into_iter().collect(),
            finished: snapshot.finished,
            record_labels: snapshot.record_labels,
            fresh_labels: snapshot.fresh_labels,
            edge,
            scratch: TrainScratch::new(),
            center_cache: CenterCache::new(),
            staged_uplink_before: None,
        })
    }

    /// Makes the session keep a copy of every batch its teacher freshly
    /// labels, for [`Session::take_fresh_labels`] to drain. Off by default
    /// (recording clones every labeled batch); the cluster executor enables
    /// it when a cross-camera [`crate::share`] policy is active.
    pub(crate) fn set_record_labels(&mut self, record: bool) {
        self.record_labels = record;
    }

    /// Drains the teacher-labeled samples recorded since the last drain
    /// (empty unless [`Session::set_record_labels`] enabled recording).
    pub(crate) fn take_fresh_labels(&mut self) -> Vec<LabeledSample> {
        std::mem::take(&mut self.fresh_labels)
    }

    /// Admits externally labeled samples (a correlated peer's exports) into
    /// the sample buffer, evicting the oldest residents as needed. Admitted
    /// imports are *not* re-exported by [`Session::take_fresh_labels`], so
    /// shared labels never echo around the fleet.
    pub(crate) fn admit_samples(&mut self, samples: impl IntoIterator<Item = LabeledSample>) {
        self.buffer.extend(samples);
    }

    /// The session's effective teacher-labeling throughput in samples per
    /// second — the rate an admitted import batch would have cost to label
    /// locally.
    pub(crate) fn labeling_sps(&self) -> f64 {
        self.platform.effective_labeling_sps(self.config.stream.fps)
    }

    /// Whether the session carries an edge–cloud tier (the configuration
    /// had an [`EdgeConfig`](crate::edge::EdgeConfig)).
    pub(crate) fn has_edge_tier(&self) -> bool {
        self.edge.is_some()
    }

    /// Whether the most recent labeling phase ran on the cloud tier. The
    /// cluster executor exempts such phases from accelerator arbitration —
    /// offloaded labeling costs no local compute.
    pub(crate) fn last_phase_offloaded(&self) -> bool {
        self.edge.as_ref().is_some_and(|tier| tier.state.last_phase_offloaded)
    }

    /// This session's edge-tier counters, for cluster-level aggregation.
    pub(crate) fn edge_accum(&self) -> Option<EdgeAccum> {
        self.edge.as_ref().map(EdgeTier::accum)
    }

    /// Buffer depth and uplink byte meters, the session-side half of the
    /// cluster's [`OffloadContext`](crate::edge::OffloadContext):
    /// `(buffer_len, bytes_shipped, window_bytes)`. The byte meters are
    /// zero without an edge tier.
    pub(crate) fn offload_meter(&self) -> (usize, u64, u64) {
        let (bytes_shipped, window_bytes) = self
            .edge
            .as_ref()
            .map_or((0, 0), |tier| (tier.state.bytes_shipped, tier.state.window_bytes));
        (self.buffer.len(), bytes_shipped, window_bytes)
    }

    /// Cumulative uplink meters for observer reporting: `(bytes_shipped,
    /// labels_cloud)`, or `None` without an edge tier. Deltas between two
    /// reads bound one step's shipment.
    pub(crate) fn uplink_meter(&self) -> Option<(u64, u64)> {
        self.edge.as_ref().map(|tier| (tier.state.bytes_shipped, tier.state.labels_cloud))
    }

    /// Current sample-buffer depth, for barrier sampling.
    pub(crate) fn buffer_len(&self) -> usize {
        self.buffer.len()
    }

    /// Fraction of buffered samples stamped at or after `cutoff_s` on the
    /// session's own clock, for barrier sampling.
    pub(crate) fn buffer_fresh_fraction(&self, cutoff_s: f64) -> f64 {
        self.buffer.fresh_fraction(cutoff_s)
    }

    /// Routes the session's labeling for the window that is starting:
    /// local teacher or cloud tier (optionally byte-budgeted). Opens a new
    /// uplink accounting window — the per-window byte meter resets. The
    /// cluster executor calls this at every window barrier with the
    /// [`OffloadPolicy`](crate::edge::OffloadPolicy)'s decision; standalone
    /// sessions may drive it directly.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the session has no edge tier
    /// (no [`EdgeConfig`](crate::edge::EdgeConfig) in its configuration).
    pub fn set_label_route(&mut self, route: LabelRoute) -> Result<()> {
        match self.edge.as_mut() {
            Some(tier) => {
                tier.begin_window(route);
                Ok(())
            }
            None => Err(CoreError::InvalidConfig {
                reason: "cannot set a label route: the session has no edge tier configured \
                         (attach one with SimConfig::builder(..).edge(..))"
                    .into(),
            }),
        }
    }

    /// The session's current label route, or `None` without an edge tier.
    #[must_use]
    pub fn label_route(&self) -> Option<LabelRoute> {
        self.edge.as_ref().map(|tier| tier.state.route)
    }

    /// Number of cloud labels shipped but not yet arrived into the buffer.
    #[must_use]
    pub fn in_flight_cloud_labels(&self) -> usize {
        self.edge.as_ref().map_or(0, |tier| tier.state.in_flight.len())
    }

    /// The configuration this session was built from.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The resolved platform capability sheet the session runs against.
    #[must_use]
    pub fn platform(&self) -> &PlatformRates {
        &self.platform
    }

    /// The stream's resumable read position: how far the labeling kernel has
    /// consumed the camera stream. Snapshots carry this cursor.
    #[must_use]
    pub fn stream_cursor(&self) -> StreamCursor {
        self.cursor
    }

    /// Current simulated time in seconds.
    #[must_use]
    pub fn now_s(&self) -> f64 {
        self.now_s
    }

    /// Total scenario duration in seconds.
    #[must_use]
    pub fn duration_s(&self) -> f64 {
        self.duration_s
    }

    /// Fraction of the scenario executed so far, in `[0, 1]`.
    #[must_use]
    pub fn progress(&self) -> f64 {
        (self.now_s / self.duration_s).clamp(0.0, 1.0)
    }

    /// Whether the scenario has completed.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.finished && self.pending.is_empty()
    }

    /// The accuracy timeline recorded so far.
    #[must_use]
    pub fn accuracy_timeline(&self) -> &[(f64, f64)] {
        &self.timeline
    }

    /// The phases executed so far.
    #[must_use]
    pub fn phases(&self) -> &[PhaseRecord] {
        &self.phases
    }

    /// Number of drift responses issued so far.
    #[must_use]
    pub fn drift_responses(&self) -> usize {
        self.drift_responses
    }

    /// Executes work until the next event is available and returns it.
    ///
    /// Each scheduler action produces a short burst of events (an optional
    /// [`SessionEvent::Drift`], the [`SessionEvent::Accuracy`] measurements
    /// that fell inside the phase, then the [`SessionEvent::Phase`] itself);
    /// `step` drains that burst one event per call. After the scenario ends
    /// it keeps returning [`SessionEvent::Finished`].
    ///
    /// # Errors
    ///
    /// Returns an error if a kernel invocation fails (which indicates a
    /// configuration inconsistency, such as mismatched feature dimensions).
    pub fn step(&mut self) -> Result<SessionEvent> {
        if let Some(event) = self.pending.pop_front() {
            return Ok(event);
        }
        if self.finished {
            return Ok(SessionEvent::Finished);
        }
        if self.now_s >= self.duration_s {
            // Flush any remaining measurement points, then finish.
            self.measure_until(self.duration_s)?;
            self.finished = true;
            self.pending.push_back(SessionEvent::Finished);
            // lint: allow(panic) — the Finished event was pushed on the line
            // above; the queue cannot be empty here
            return Ok(self.pending.pop_front().expect("finished event queued"));
        }
        self.execute_next_action()?;
        // lint: allow(panic) — execute_next_action always queues at least the
        // phase event for the action it ran
        Ok(self.pending.pop_front().expect("every action yields at least a phase event"))
    }

    /// Steps the session to completion, forwarding every event to `observer`
    /// (each event through [`SimObserver::on_event`] first, then its
    /// specific hook). Uplink shipments are reported through
    /// [`SimObserver::on_uplink_transfer`] with an empty camera name — a
    /// standalone session has none; the cluster executor supplies it.
    ///
    /// # Errors
    ///
    /// Propagates the first error from [`Session::step`].
    pub fn run_with(&mut self, observer: &mut dyn SimObserver) -> Result<()> {
        let mut last_uplink = self.uplink_meter();
        loop {
            let event = self.step()?;
            if let (Some((bytes0, labels0)), Some((bytes1, labels1))) =
                (last_uplink, self.uplink_meter())
            {
                if bytes1 > bytes0 || labels1 > labels0 {
                    observer.on_uplink_transfer(
                        "",
                        self.now_s,
                        bytes1 - bytes0,
                        (labels1 - labels0) as usize,
                    );
                }
                last_uplink = Some((bytes1, labels1));
            }
            observer.on_event(&event);
            match event {
                SessionEvent::Phase(phase) => observer.on_phase(&phase),
                SessionEvent::Drift { at_s, response_index } => {
                    observer.on_drift(at_s, response_index);
                }
                SessionEvent::Accuracy { at_s, accuracy } => {
                    observer.on_accuracy(at_s, accuracy);
                }
                SessionEvent::Finished => {
                    observer.on_finished();
                    return Ok(());
                }
            }
        }
    }

    /// Steps the session to completion without observing events.
    ///
    /// # Errors
    ///
    /// Propagates the first error from [`Session::step`].
    pub fn run_to_end(&mut self) -> Result<()> {
        self.run_with(&mut ())
    }

    /// Executes scheduler actions until one temporal phase completes (or the
    /// scenario finishes), returning the whole event burst in order. The
    /// last event is always [`SessionEvent::Phase`] or
    /// [`SessionEvent::Finished`], so callers that account virtual time per
    /// phase — the [`Cluster`](crate::Cluster) executor — get exactly one
    /// time-bearing event per call, with its drift and accuracy events
    /// attached.
    ///
    /// # Errors
    ///
    /// Propagates the first error from [`Session::step`].
    pub fn step_phase(&mut self) -> Result<Vec<SessionEvent>> {
        let mut events = Vec::new();
        loop {
            let event = self.step()?;
            let boundary = matches!(event, SessionEvent::Phase(_) | SessionEvent::Finished);
            events.push(event);
            if boundary {
                return Ok(events);
            }
        }
    }

    /// Consumes the session and returns the metrics collected so far.
    ///
    /// Normally called after [`Session::step`] returned
    /// [`SessionEvent::Finished`]; calling it earlier yields a partial result
    /// covering only the executed prefix of the scenario — `duration_s` and
    /// `energy_joules` then account for the executed time, not the full
    /// scenario.
    #[must_use]
    pub fn into_result(self) -> SimResult {
        let mean_accuracy = if self.timeline.is_empty() {
            0.0
        } else {
            self.timeline.iter().map(|(_, a)| a).sum::<f64>() / self.timeline.len() as f64
        };
        // A finished run covers the whole scenario (now_s can overshoot the
        // end by a fraction of a phase); a partial run covers only the
        // executed prefix.
        let covered_s = self.now_s.min(self.duration_s);
        SimResult {
            system: format!("{} / {}", self.platform.name(), self.scheduler.name()),
            scenario: self.config.scenario.name().to_string(),
            pair: self.config.pair,
            scheduler: self.scheduler.name(),
            accuracy_timeline: self.timeline,
            mean_accuracy,
            frame_drop_rate: self.drop_rate,
            energy_joules: self.platform.energy_joules(covered_s),
            power_watts: self.platform.power_watts(),
            phases: self.phases,
            drift_responses: self.drift_responses,
            duration_s: covered_s,
        }
    }

    /// Asks the scheduler for one action and executes it, queueing the
    /// resulting events in chronological order.
    fn execute_next_action(&mut self) -> Result<()> {
        self.execute_or_stage(false).map(|staged| {
            debug_assert!(staged.is_none(), "staging only happens when requested");
        })
    }

    /// Pre-executes the session's next phase at a cluster window's start, so
    /// co-resident retraining phases can be dispatched as one stacked batch.
    ///
    /// Within a window nothing outside the session touches its state (label
    /// exchange, routing, and churn all happen at barriers), so executing
    /// the phase early is bit-identical to executing it when the event loop
    /// pops it — the produced events stay queued in `pending` and drain at
    /// the pop exactly as an unstaged burst would. A retraining phase with a
    /// non-empty batch stops short of the gradient work and returns the
    /// [`StagedRetrain`] describing it; the caller runs the stacked dispatch
    /// and then [`Session::finish_staged_retrain`]. Every other action
    /// executes fully here and returns `None`.
    ///
    /// Returns `None` without doing anything when the session is finished,
    /// mid-burst (`pending` non-empty), or out of scenario time — those
    /// sessions take the ordinary stepping path.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Session::step`].
    pub(crate) fn stage_phase(&mut self) -> Result<Option<StagedRetrain>> {
        if self.finished || !self.pending.is_empty() || self.now_s >= self.duration_s {
            return Ok(None);
        }
        // A labeling phase executed here ships its uplink bytes before the
        // event loop's observer reads the meter; park the pre-phase reading
        // so the pop still reports the correct delta.
        self.staged_uplink_before = self.uplink_meter();
        self.execute_or_stage(true)
    }

    /// Takes the uplink-meter baseline parked by [`Session::stage_phase`],
    /// if the upcoming event burst was pre-executed there.
    pub(crate) fn take_staged_uplink_baseline(&mut self) -> Option<(u64, u64)> {
        self.staged_uplink_before.take()
    }

    /// The pieces a stacked retraining job borrows from this session:
    /// `(network, learning_rate, batch_size)`.
    pub(crate) fn stacked_parts(&mut self) -> (&mut Mlp, f32, usize) {
        let (learning_rate, batch_size) = self.student.hyperparams();
        (self.student.network_mut(), learning_rate, batch_size)
    }

    /// Completes a retraining phase staged by [`Session::stage_phase`] after
    /// the stacked dispatch updated the weights: evaluates validation
    /// accuracy against the new weights, records the phase, and advances the
    /// clock — exactly the tail [`Session::execute_or_stage`] skipped.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Dnn`] if the validation batch's feature width
    /// does not match (a configuration inconsistency).
    pub(crate) fn finish_staged_retrain(&mut self, staged: StagedRetrain) -> Result<()> {
        self.last_validation =
            Some(self.student.accuracy_on_samples_with(&staged.validation, &mut self.scratch)?);
        self.push_phase(PhaseRecord {
            kind: PhaseKind::Retrain,
            start_s: self.now_s,
            duration_s: staged.phase_duration,
            samples: staged.presentations,
            drift_response: false,
        });
        self.now_s += staged.phase_duration;
        Ok(())
    }

    /// The shared body of [`Session::execute_next_action`] (`stage: false`)
    /// and [`Session::stage_phase`] (`stage: true`); see the latter for the
    /// staging contract.
    fn execute_or_stage(&mut self, stage: bool) -> Result<Option<StagedRetrain>> {
        let duration = self.duration_s;
        let fps = self.config.stream.fps;
        // Cloud labels whose uplink round trip has completed land in the
        // buffer before the scheduler looks at it — deferred arrival is the
        // whole point of the modeled uplink.
        if let Some(tier) = self.edge.as_mut() {
            let delivered = tier.deliver_matured(self.now_s);
            if !delivered.is_empty() {
                if self.record_labels {
                    self.fresh_labels.extend(delivered.iter().cloned());
                }
                self.buffer.extend(delivered);
            }
        }
        let ctx = SchedulerContext {
            now_s: self.now_s,
            buffer_len: self.buffer.len(),
            buffer_capacity: self.buffer.capacity(),
            last_validation_accuracy: self.last_validation,
            last_labeling_accuracy: self.last_labeling,
        };
        let action = self.scheduler.next_action(&ctx);
        self.phase_seed = self.phase_seed.wrapping_add(0x9e37_79b9);

        match action {
            Action::Label { samples, reset_buffer } => {
                if reset_buffer {
                    self.buffer.reset();
                    // Stale pre-drift labels must not trickle into the
                    // freshly cleared buffer once their uplink round trip
                    // completes.
                    if let Some(tier) = self.edge.as_mut() {
                        tier.discard_in_flight();
                    }
                    self.drift_responses += 1;
                    self.pending.push_back(SessionEvent::Drift {
                        at_s: self.now_s,
                        response_index: self.drift_responses,
                    });
                }
                let route = self.edge.as_ref().map_or(LabelRoute::Local, EdgeTier::phase_route);
                let offload = matches!(route, LabelRoute::Cloud { .. });
                let rate = if offload {
                    // The uplink is the labeling bottleneck: frames ship no
                    // faster than the link carries them or the camera
                    // captures them.
                    self.edge
                        .as_ref()
                        // lint: allow(panic) — route came from this same
                        // edge field two lines up; Cloud implies Some
                        .expect("a cloud route implies an edge tier")
                        .labeling_sps(fps)
                } else {
                    self.platform.effective_labeling_sps(fps)
                };
                if rate <= f64::EPSILON {
                    // Labeling is starved out entirely (e.g. an overloaded
                    // GPU); burn the rest of the scenario waiting.
                    let wait = (duration - self.now_s).max(MIN_PHASE_SECONDS);
                    self.measure_until(self.now_s + wait)?;
                    self.push_phase(PhaseRecord {
                        kind: PhaseKind::Wait,
                        start_s: self.now_s,
                        duration_s: wait,
                        samples: 0,
                        drift_response: reset_buffer,
                    });
                    self.now_s += wait;
                    return Ok(None);
                }
                let remaining = duration - self.now_s;
                let ideal_duration = samples.max(1) as f64 / rate;
                let phase_duration =
                    ideal_duration.clamp(MIN_PHASE_SECONDS.min(remaining), remaining);
                let actual_samples =
                    ((phase_duration * rate).floor() as usize).clamp(1, samples.max(1));

                // Spread the labeled samples over the phase's time range,
                // consuming the stream through its resumable cursor (the
                // position snapshots carry).
                let step = ((phase_duration * fps) as u64 / actual_samples as u64).max(1);
                self.cursor.seek_time(&self.stream, self.now_s);
                let frames = self.cursor.frames_until_cached(
                    &self.stream,
                    self.now_s + phase_duration,
                    step,
                    &mut self.center_cache,
                );
                let selected: Vec<Frame> = frames.into_iter().take(actual_samples).collect();
                let phase_samples;
                if offload {
                    // Cloud path: each sampled frame runs the near-duplicate
                    // filter, survivors ship over the serial uplink and come
                    // back as in-flight labels — nothing enters the buffer
                    // until the round trip completes.
                    // lint: allow(panic) — offload is only true when
                    // phase_route read Cloud from this same Some(edge)
                    let tier = self.edge.as_mut().expect("a cloud route implies an edge tier");
                    let mut shipped: Vec<LabeledSample> = Vec::with_capacity(selected.len());
                    for frame in &selected {
                        if let Some(sample) = tier.offer(
                            frame.sample.features.clone(),
                            frame.sample.true_class,
                            frame.timestamp_s,
                            &frame.attributes,
                        ) {
                            shipped.push(sample);
                        }
                    }
                    tier.state.last_phase_offloaded = true;
                    phase_samples = shipped.len();
                    if !shipped.is_empty() {
                        self.last_labeling = Some(
                            self.student.accuracy_on_samples_with(&shipped, &mut self.scratch)?,
                        );
                    }
                } else {
                    let labeled: Vec<LabeledSample> = selected
                        .iter()
                        .map(|frame| LabeledSample {
                            features: frame.sample.features.clone(),
                            teacher_label: self
                                .teacher
                                .label(frame.sample.true_class, frame.attributes.difficulty()),
                            true_class: frame.sample.true_class,
                            timestamp_s: frame.timestamp_s,
                        })
                        .collect();
                    // acc_l: the current student's accuracy on the freshly
                    // labeled data, judged by the teacher's labels.
                    self.last_labeling =
                        Some(self.student.accuracy_on_samples_with(&labeled, &mut self.scratch)?);
                    if let Some(tier) = self.edge.as_mut() {
                        tier.note_local_labels(labeled.len());
                        tier.state.last_phase_offloaded = false;
                    }
                    if self.record_labels {
                        self.fresh_labels.extend(labeled.iter().cloned());
                    }
                    self.buffer.extend(labeled);
                    phase_samples = actual_samples;
                }

                self.measure_until(self.now_s + phase_duration)?;
                self.push_phase(PhaseRecord {
                    kind: PhaseKind::Label,
                    start_s: self.now_s,
                    duration_s: phase_duration,
                    samples: phase_samples,
                    drift_response: reset_buffer,
                });
                self.now_s += phase_duration;
            }
            Action::Retrain { samples, epochs } => {
                let (train, validation) = self.buffer.draw(
                    samples,
                    self.config.hyper.validation_samples,
                    self.phase_seed,
                );
                if train.is_empty() {
                    let wait = MIN_PHASE_SECONDS.max(1.0);
                    self.measure_until(self.now_s + wait)?;
                    self.push_phase(PhaseRecord {
                        kind: PhaseKind::Wait,
                        start_s: self.now_s,
                        duration_s: wait,
                        samples: 0,
                        drift_response: false,
                    });
                    self.now_s += wait;
                    return Ok(None);
                }
                let presentations = train.len() * epochs.max(1);
                let rate = self.platform.effective_retraining_sps(fps);
                let remaining = duration - self.now_s;
                let phase_duration = if rate <= f64::EPSILON {
                    remaining
                } else {
                    (presentations as f64 / rate).clamp(MIN_PHASE_SECONDS.min(remaining), remaining)
                };

                // The old model keeps serving inference during retraining;
                // the updated weights deploy when the phase completes.
                self.measure_until(self.now_s + phase_duration)?;
                if stage {
                    // The schedule is decided and the measurements taken;
                    // hand the gradient work to the stacked dispatch. The
                    // caller completes the phase via finish_staged_retrain.
                    return Ok(Some(StagedRetrain {
                        train,
                        validation,
                        epochs: epochs.max(1),
                        presentations,
                        phase_duration,
                    }));
                }
                self.student.retrain_with(&train, epochs.max(1), &mut self.scratch)?;
                self.last_validation =
                    Some(self.student.accuracy_on_samples_with(&validation, &mut self.scratch)?);

                self.push_phase(PhaseRecord {
                    kind: PhaseKind::Retrain,
                    start_s: self.now_s,
                    duration_s: phase_duration,
                    samples: presentations,
                    drift_response: false,
                });
                self.now_s += phase_duration;
            }
            Action::Wait { seconds } => {
                // Schedulers come from the open registry, so their actions
                // are untrusted: a NaN wait would poison the clock and spin
                // the session forever.
                if !seconds.is_finite() {
                    return Err(CoreError::InvalidConfig {
                        reason: format!(
                            "scheduler '{}' returned a non-finite wait ({seconds})",
                            self.scheduler.name()
                        ),
                    });
                }
                let remaining = duration - self.now_s;
                let wait = seconds.clamp(MIN_PHASE_SECONDS.min(remaining), remaining);
                self.measure_until(self.now_s + wait)?;
                self.push_phase(PhaseRecord {
                    kind: PhaseKind::Wait,
                    start_s: self.now_s,
                    duration_s: wait,
                    samples: 0,
                    drift_response: false,
                });
                self.now_s += wait;
            }
        }
        Ok(None)
    }

    fn push_phase(&mut self, phase: PhaseRecord) {
        self.phases.push(phase);
        self.pending.push_back(SessionEvent::Phase(phase));
    }

    /// Records accuracy measurements at every measurement point in
    /// `[next_measure, until)` using the student's current weights, queueing
    /// one event per point.
    fn measure_until(&mut self, until: f64) -> Result<()> {
        let interval = self.config.measure_interval_s;
        let frames_wanted = self.config.eval_frames_per_measurement as u64;
        while self.next_measure_s < until && self.next_measure_s < self.duration_s {
            let window_frames = (interval * self.config.stream.fps) as u64;
            let step = (window_frames / frames_wanted.max(1)).max(1);
            let frames = self.stream.frames_between_cached(
                self.next_measure_s,
                self.next_measure_s + interval,
                step,
                &mut self.center_cache,
            );
            if frames.is_empty() {
                return Err(CoreError::InvalidConfig {
                    reason: "measurement interval produced no evaluation frames".into(),
                });
            }
            let accuracy = self.student.accuracy_on_frames_with(&frames, &mut self.scratch)?
                * (1.0 - self.drop_rate);
            self.timeline.push((self.next_measure_s, accuracy));
            self.pending.push_back(SessionEvent::Accuracy { at_s: self.next_measure_s, accuracy });
            self.next_measure_s += interval;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::SchedulerKind;
    use crate::sim::test_support::short_config;
    use crate::ClSimulator;

    #[test]
    fn stepped_session_matches_one_shot_run_exactly() {
        let run = ClSimulator::new(short_config(SchedulerKind::DaCapoSpatiotemporal))
            .unwrap()
            .run()
            .unwrap();
        let mut session = Session::new(short_config(SchedulerKind::DaCapoSpatiotemporal)).unwrap();
        while session.step().unwrap() != SessionEvent::Finished {}
        let stepped = session.into_result();
        assert_eq!(run, stepped);
    }

    #[test]
    fn event_stream_mirrors_the_collected_result() {
        let mut session = Session::new(short_config(SchedulerKind::DaCapoSpatiotemporal)).unwrap();
        let mut phases = 0usize;
        let mut accuracy_events = Vec::new();
        let mut drift_events = 0usize;
        loop {
            match session.step().unwrap() {
                SessionEvent::Phase(_) => phases += 1,
                SessionEvent::Accuracy { at_s, accuracy } => accuracy_events.push((at_s, accuracy)),
                SessionEvent::Drift { .. } => drift_events += 1,
                SessionEvent::Finished => break,
            }
        }
        assert!(session.is_finished());
        let result = session.into_result();
        assert_eq!(result.phases.len(), phases);
        assert_eq!(result.accuracy_timeline, accuracy_events);
        assert_eq!(result.drift_responses, drift_events);
        assert!(drift_events >= 1, "the injected drift should surface as an event");
    }

    #[test]
    fn observer_hooks_see_every_event() {
        #[derive(Default)]
        struct Counter {
            phases: usize,
            accuracy: usize,
            drifts: usize,
            finished: bool,
        }
        impl SimObserver for Counter {
            fn on_phase(&mut self, _phase: &PhaseRecord) {
                self.phases += 1;
            }
            fn on_drift(&mut self, _at_s: f64, _index: usize) {
                self.drifts += 1;
            }
            fn on_accuracy(&mut self, _at_s: f64, _accuracy: f64) {
                self.accuracy += 1;
            }
            fn on_finished(&mut self) {
                self.finished = true;
            }
        }

        let mut session = Session::new(short_config(SchedulerKind::DaCapoSpatiotemporal)).unwrap();
        let mut counter = Counter::default();
        session.run_with(&mut counter).unwrap();
        assert!(counter.finished);
        let result = session.into_result();
        assert_eq!(counter.phases, result.phases.len());
        assert_eq!(counter.accuracy, result.accuracy_timeline.len());
        assert_eq!(counter.drifts, result.drift_responses);
    }

    #[test]
    fn finished_sessions_keep_reporting_finished() {
        let mut session = Session::new(short_config(SchedulerKind::NoAdaptation)).unwrap();
        session.run_to_end().unwrap();
        for _ in 0..3 {
            assert_eq!(session.step().unwrap(), SessionEvent::Finished);
        }
    }

    #[test]
    fn progress_and_time_advance_monotonically() {
        let mut session = Session::new(short_config(SchedulerKind::DaCapoSpatial)).unwrap();
        assert_eq!(session.now_s(), 0.0);
        assert_eq!(session.progress(), 0.0);
        let mut previous = 0.0;
        while session.step().unwrap() != SessionEvent::Finished {
            assert!(session.now_s() >= previous);
            previous = session.now_s();
        }
        assert!((session.progress() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn partial_results_cover_only_the_executed_prefix() {
        let mut session = Session::new(short_config(SchedulerKind::DaCapoSpatiotemporal)).unwrap();
        // Execute a handful of phases, well short of the 120 s scenario.
        let mut phases = 0;
        while phases < 3 {
            if let SessionEvent::Phase(_) = session.step().unwrap() {
                phases += 1;
            }
        }
        let partial = session.into_result();
        assert_eq!(partial.phases.len(), 3);
        let executed: f64 = partial.phases.iter().map(|p| p.duration_s).sum();
        assert!(executed < 120.0);
        // Partial results account only for executed time, not the full
        // scenario (1 W platform: energy in joules == covered seconds).
        assert!((partial.duration_s - executed).abs() < 1e-9);
        assert!((partial.energy_joules - executed).abs() < 1e-9);
    }

    #[test]
    fn non_finite_waits_from_untrusted_policies_error_instead_of_spinning() {
        use crate::config::Hyperparams;
        use crate::sched::{self, Action, Scheduler, SchedulerContext, SchedulerFactory};
        use std::sync::Arc;

        struct NanWait;
        impl Scheduler for NanWait {
            fn name(&self) -> String {
                "NaN-Wait".to_string()
            }
            fn next_action(&mut self, _ctx: &SchedulerContext) -> Action {
                Action::Wait { seconds: f64::NAN }
            }
        }
        struct NanWaitFactory;
        impl SchedulerFactory for NanWaitFactory {
            fn name(&self) -> &str {
                "nan-wait"
            }
            fn build(&self, _hyper: &Hyperparams) -> Box<dyn Scheduler> {
                Box::new(NanWait)
            }
        }

        sched::register(Arc::new(NanWaitFactory));
        let mut config = short_config(SchedulerKind::NoAdaptation);
        config.scheduler = "nan-wait".into();
        let mut session = Session::new(config).unwrap();
        let err = loop {
            match session.step() {
                Ok(SessionEvent::Finished) => panic!("NaN wait must not finish cleanly"),
                Ok(_) => continue,
                Err(err) => break err,
            }
        };
        assert!(err.to_string().contains("non-finite wait"), "{err}");
    }

    #[test]
    fn step_phase_yields_whole_bursts_ending_in_a_time_bearing_event() {
        let mut session = Session::new(short_config(SchedulerKind::DaCapoSpatiotemporal)).unwrap();
        let mut bursts = 0usize;
        let mut phases = 0usize;
        loop {
            let events = session.step_phase().unwrap();
            assert!(!events.is_empty());
            // Only the final event of a burst is time-bearing.
            for event in &events[..events.len() - 1] {
                assert!(matches!(
                    event,
                    SessionEvent::Drift { .. } | SessionEvent::Accuracy { .. }
                ));
            }
            bursts += 1;
            match events.last().unwrap() {
                SessionEvent::Phase(_) => phases += 1,
                SessionEvent::Finished => break,
                other => panic!("burst ended with {other:?}"),
            }
        }
        assert!(session.is_finished());
        let result = session.into_result();
        assert_eq!(result.phases.len(), phases);
        assert!(bursts > phases, "the finished burst is extra");
        // Bit-identical to a one-shot run of the same config.
        let one_shot = ClSimulator::new(short_config(SchedulerKind::DaCapoSpatiotemporal))
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(result, one_shot);
    }

    #[test]
    fn sessions_are_send_for_fleet_threading() {
        fn assert_send<T: Send>() {}
        assert_send::<Session>();
    }

    /// Steps a session `phases` whole phases, then returns it.
    fn session_after_phases(scheduler: SchedulerKind, phases: usize) -> Session {
        let mut session = Session::new(short_config(scheduler)).unwrap();
        let mut executed = 0;
        while executed < phases && !session.is_finished() {
            if let SessionEvent::Phase(_) = session.step().unwrap() {
                executed += 1;
            }
        }
        session
    }

    #[test]
    fn snapshot_restore_is_bit_identical_for_every_builtin_scheduler() {
        for kind in SchedulerKind::BUILTINS {
            let mut uninterrupted = Session::new(short_config(kind)).unwrap();
            uninterrupted.run_to_end().unwrap();
            let expected = uninterrupted.into_result();

            let interrupted = session_after_phases(kind, 4);
            let snapshot = interrupted.snapshot();
            assert_eq!(snapshot.version, SNAPSHOT_VERSION);
            drop(interrupted);
            let mut restored = Session::restore(snapshot).unwrap();
            restored.run_to_end().unwrap();
            assert_eq!(restored.into_result(), expected, "{kind} diverged after restore");
        }
    }

    #[test]
    fn snapshot_survives_a_json_round_trip_bit_identically() {
        let mut uninterrupted =
            Session::new(short_config(SchedulerKind::DaCapoSpatiotemporal)).unwrap();
        uninterrupted.run_to_end().unwrap();
        let expected = uninterrupted.into_result();

        let session = session_after_phases(SchedulerKind::DaCapoSpatiotemporal, 5);
        let json = session.snapshot().to_json();
        let parsed = SessionSnapshot::from_json(&json).unwrap();
        assert_eq!(parsed, session.snapshot(), "JSON round trip preserves the snapshot exactly");
        let mut restored = Session::restore(parsed).unwrap();
        restored.run_to_end().unwrap();
        assert_eq!(restored.into_result(), expected);
    }

    #[test]
    fn snapshots_capture_progress_and_restore_resumes_mid_run() {
        let session = session_after_phases(SchedulerKind::DaCapoSpatiotemporal, 3);
        let snapshot = session.snapshot();
        assert!(snapshot.now_s > 0.0);
        assert_eq!(snapshot.phases.len(), 3);
        assert!(!snapshot.finished);
        assert!(snapshot.stream_cursor.position() > 0, "labeling consumed stream frames");
        let restored = Session::restore(snapshot.clone()).unwrap();
        assert_eq!(restored.now_s(), session.now_s());
        assert_eq!(restored.phases(), session.phases());
        assert_eq!(restored.stream_cursor(), session.stream_cursor());
        // Snapshotting the restored session reproduces the original snapshot.
        assert_eq!(restored.snapshot(), snapshot);
    }

    #[test]
    fn unsupported_snapshot_versions_are_rejected_loudly() {
        let session = session_after_phases(SchedulerKind::NoAdaptation, 1);
        let mut snapshot = session.snapshot();
        snapshot.version = SNAPSHOT_VERSION + 1;
        let err = match Session::restore(snapshot) {
            Err(err) => err,
            Ok(_) => panic!("future-version snapshots must not restore"),
        };
        match &err {
            CoreError::Snapshot { reason } => {
                assert!(reason.contains("version"), "{reason}");
            }
            other => panic!("expected CoreError::Snapshot, got {other:?}"),
        }
    }

    #[test]
    fn malformed_snapshot_json_errors_cleanly() {
        assert!(SessionSnapshot::from_json("not json").is_err());
        assert!(SessionSnapshot::from_json("{\"version\": 2}").is_err());
    }

    /// The short test config with an edge tier over the broadband uplink.
    fn edge_config(scheduler: SchedulerKind) -> SimConfig {
        let mut config = short_config(scheduler);
        config.edge = Some(crate::edge::EdgeConfig::new("broadband"));
        config
    }

    #[test]
    fn a_local_routed_edge_session_is_bit_identical_to_a_plain_one() {
        let mut plain = Session::new(short_config(SchedulerKind::DaCapoSpatiotemporal)).unwrap();
        plain.run_to_end().unwrap();
        let mut edged = Session::new(edge_config(SchedulerKind::DaCapoSpatiotemporal)).unwrap();
        edged.run_to_end().unwrap();
        let accum = edged.edge_accum().unwrap();
        assert_eq!(accum.labels_cloud, 0, "the default route is local");
        assert_eq!(accum.bytes_shipped, 0);
        assert!(accum.labels_local > 0, "local labels are still counted");
        assert_eq!(plain.into_result(), edged.into_result());
    }

    #[test]
    fn cloud_routing_defers_label_arrival_into_the_buffer() {
        let mut session = Session::new(edge_config(SchedulerKind::DaCapoSpatiotemporal)).unwrap();
        session.set_label_route(LabelRoute::Cloud { byte_budget: None }).unwrap();
        assert_eq!(session.label_route(), Some(LabelRoute::Cloud { byte_budget: None }));
        let mut saw_in_flight = false;
        while !session.is_finished() {
            session.step().unwrap();
            saw_in_flight |= session.in_flight_cloud_labels() > 0;
        }
        assert!(saw_in_flight, "cloud labels must spend time on the wire");
        let accum = session.edge_accum().unwrap();
        assert!(accum.labels_cloud > 0, "{accum:?}");
        assert!(accum.bytes_shipped > 0);
        assert!(accum.frames_filtered > 0, "a static scene triggers the filter: {accum:?}");
        assert!(!accum.latencies_s.is_empty());
        assert!(accum.latencies_s.iter().all(|l| *l > 0.0));
    }

    #[test]
    fn snapshots_round_trip_mid_flight_cloud_labels_bit_identically() {
        let route = LabelRoute::Cloud { byte_budget: None };
        let mut uninterrupted =
            Session::new(edge_config(SchedulerKind::DaCapoSpatiotemporal)).unwrap();
        uninterrupted.set_label_route(route).unwrap();
        uninterrupted.run_to_end().unwrap();
        let expected_accum = uninterrupted.edge_accum().unwrap();
        let expected = uninterrupted.into_result();

        let mut session = Session::new(edge_config(SchedulerKind::DaCapoSpatiotemporal)).unwrap();
        session.set_label_route(route).unwrap();
        while session.in_flight_cloud_labels() == 0 && !session.is_finished() {
            session.step().unwrap();
        }
        assert!(session.in_flight_cloud_labels() > 0, "test needs labels on the wire");
        let json = session.snapshot().to_json();
        let snapshot = SessionSnapshot::from_json(&json).unwrap();
        assert!(
            !snapshot.edge.as_ref().unwrap().in_flight.is_empty(),
            "in-flight labels ride the snapshot"
        );
        let mut restored = Session::restore(snapshot).unwrap();
        restored.run_to_end().unwrap();
        let restored_accum = restored.edge_accum().unwrap();
        assert_eq!(restored_accum.labels_cloud, expected_accum.labels_cloud);
        assert_eq!(restored_accum.bytes_shipped, expected_accum.bytes_shipped);
        assert_eq!(restored.into_result(), expected);
    }

    #[test]
    fn label_routes_require_an_edge_tier() {
        let mut session = Session::new(short_config(SchedulerKind::NoAdaptation)).unwrap();
        assert!(session.label_route().is_none());
        assert_eq!(session.in_flight_cloud_labels(), 0);
        let err = session.set_label_route(LabelRoute::Local).unwrap_err();
        assert!(err.to_string().contains("no edge tier"), "{err}");
    }

    #[test]
    fn edge_state_and_config_presence_must_agree_on_restore() {
        let session = Session::new(edge_config(SchedulerKind::NoAdaptation)).unwrap();
        let mut snapshot = session.snapshot();
        snapshot.edge = None;
        assert!(Session::restore(snapshot).is_err(), "config has edge, snapshot does not");

        let plain = Session::new(short_config(SchedulerKind::NoAdaptation)).unwrap();
        let mut snapshot = plain.snapshot();
        snapshot.edge = session.snapshot().edge;
        assert!(Session::restore(snapshot).is_err(), "snapshot has edge, config does not");
    }

    #[test]
    fn restoring_an_unregistered_scheduler_fails_with_a_clear_error() {
        let session = session_after_phases(SchedulerKind::NoAdaptation, 1);
        let mut snapshot = session.snapshot();
        snapshot.config.scheduler = "never-registered-policy".into();
        let err = match Session::restore(snapshot) {
            Err(err) => err,
            Ok(_) => panic!("unregistered schedulers must not restore"),
        };
        assert!(err.to_string().contains("never-registered-policy"), "{err}");
    }

    #[test]
    fn finished_sessions_snapshot_and_restore_to_finished_sessions() {
        let mut session = Session::new(short_config(SchedulerKind::DaCapoSpatial)).unwrap();
        session.run_to_end().unwrap();
        let snapshot = session.snapshot();
        assert!(snapshot.finished);
        let mut restored = Session::restore(snapshot).unwrap();
        assert_eq!(restored.step().unwrap(), SessionEvent::Finished);
        assert_eq!(restored.into_result(), session.into_result());
    }
}
