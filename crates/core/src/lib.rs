//! The DaCapo continuous-learning runtime.
//!
//! This crate is the paper's primary contribution reassembled in software: a
//! continuous-learning system that runs the three kernels — **inference**,
//! **labeling**, **retraining** — concurrently on a constrained platform and
//! allocates resources between them so end-to-end accuracy stays high through
//! data drift.
//!
//! # Execution model
//!
//! The engine is built around three layers:
//!
//! * [`Session`] — a **re-entrant, steppable** run of one camera stream over
//!   one drifting scenario. Each [`Session::step`] executes at most one
//!   temporal phase and yields a [`SessionEvent`] (phase executed, drift
//!   detected, accuracy sampled, finished), so callers observe mid-run state
//!   instead of waiting for the scenario to end. [`Session::run_with`]
//!   forwards the event stream to a [`SimObserver`] for push-style metrics
//!   taps.
//! * [`ClSimulator`] — the one-shot compatibility wrapper: build, `run()`,
//!   get a [`SimResult`]. It is a thin loop over [`Session`], so a stepped
//!   session and a `run()` call with the same seed produce *identical*
//!   results.
//! * [`Fleet`] — the multi-camera driver: N sessions with independent
//!   scenarios/seeds/platforms executed across worker threads and aggregated
//!   into a [`FleetResult`] (mean/percentile accuracy, total energy,
//!   aggregate drop rate). Per-camera results are bit-identical to solo runs.
//! * [`Cluster`] — the shared-hardware executor: N sessions multiplexed over
//!   M accelerator resources in an event-driven virtual-time loop, with a
//!   pluggable [`arbiter`] deciding each step's capacity share. A fleet is
//!   exactly a cluster with one dedicated accelerator per camera —
//!   [`Fleet::run`] is implemented that way.
//!
//! Scheduling policies are **pluggable**: the paper's algorithms are builtin
//! [`SchedulerKind`]s, and external crates can [`sched::register`] their own
//! [`sched::SchedulerFactory`] and select it by name —
//! `SimConfig::builder(..).scheduler("my-policy")` — without touching this
//! crate.
//!
//! Execution platforms are pluggable the same way: the engine consumes a
//! [`PlatformRates`] capability sheet (per-kernel [`platform::KernelRate`]s,
//! a [`platform::Sharing`] mode, and a power draw), and where that sheet
//! comes from is decided by a [`PlatformSpec`] — a builtin [`PlatformKind`],
//! a provider registered through [`platform::register`] and selected by name
//! (`SimConfig::builder(..).platform("my-platform")`), or explicit rates.
//! Provider names accept a `:<params>` suffix (`"scaled-dacapo:32"`,
//! `"orin-dvfs:45"`), so one provider can describe a hardware family. A
//! [`Fleet`] mixes platforms freely: each camera carries its own spec, so
//! heterogeneous deployments (some cameras on accelerators, some on GPUs)
//! are just differently-configured cameras.
//!
//! Registering a custom platform:
//!
//! ```
//! use dacapo_core::platform::{self, KernelRate, PlatformProvider, PlatformRequest, Sharing};
//! use dacapo_core::{PlatformRates, Result};
//! use std::sync::Arc;
//!
//! struct NpuProvider;
//!
//! impl PlatformProvider for NpuProvider {
//!     fn name(&self) -> &str {
//!         "edge-npu"
//!     }
//!     fn build(&self, request: &PlatformRequest<'_>) -> Result<PlatformRates> {
//!         PlatformRates::new(
//!             "Edge NPU",
//!             KernelRate::fp32(4.0 * request.fps), // inference headroom
//!             KernelRate::fp32(25.0),              // labeling samples/s
//!             KernelRate::fp32(80.0),              // retraining samples/s
//!             Sharing::TimeShared,
//!             7.5,
//!         )
//!     }
//! }
//!
//! platform::register(Arc::new(NpuProvider));
//! assert!(platform::by_name("edge-npu").is_some());
//! // From here, `SimConfig::builder(..).platform("edge-npu")` selects it.
//! ```
//!
//! # Cluster execution
//!
//! [`Cluster`] scales the engine from one camera to the thousand-camera
//! regime the roadmap targets: N sessions share M accelerators, and an
//! arbitration policy decides how much of an accelerator each labeling or
//! retraining step gets. The step's *cluster-time* duration is stretched by
//! the reciprocal of the granted share (the
//! [`Sharing::TimeShared`](platform::Sharing) slowdown generalized across
//! cameras), while the session's own timeline is untouched — so per-camera
//! results stay bit-identical to solo runs, and contention surfaces in the
//! [`ContentionMetrics`] (p50/p99 step stretch, makespan, per-accelerator
//! utilization, peak event-queue depth).
//!
//! Arbiters are pluggable through [`arbiter::register`], mirroring the
//! scheduler and platform registries. Builtins: `"fair-share"`,
//! `"priority:<weights>"`, and `"drift-first[:<boost>]"` (sessions
//! recovering from a drift get a larger slice — the paper's temporal
//! allocation lifted to fleet scope). Admission control bounds residency:
//! [`Cluster::capacity_per_accelerator`] plus an [`AdmissionPolicy`] either
//! rejects overflow cameras with a typed [`CoreError::AdmissionRejected`]
//! or queues them until a resident finishes.
//!
//! A 1000-camera quickstart:
//!
//! ```no_run
//! use dacapo_core::{Cluster, SimConfig};
//! use dacapo_datagen::Scenario;
//! use dacapo_dnn::zoo::ModelPair;
//!
//! # fn main() -> Result<(), dacapo_core::CoreError> {
//! let mut cluster = Cluster::new(4).arbiter("drift-first:3");
//! for i in 0..1000 {
//!     let scenario = Scenario::all()[i % 8].clone();
//!     let config = SimConfig::builder(scenario, ModelPair::ResNet18Wrn50)
//!         .seed(0xDACA90 + i as u64)
//!         .build()?;
//!     cluster = cluster.camera(format!("cam-{i:04}"), config);
//! }
//! let result = cluster.run()?;
//! println!(
//!     "1000 cameras / 4 accelerators: makespan {:.0} s, p99 stretch {:.1}x, \
//!      mean utilization {:.0}%",
//!     result.contention.makespan_s,
//!     result.contention.p99_step_stretch,
//!     result.contention.mean_accelerator_utilization * 100.0,
//! );
//! # Ok(())
//! # }
//! ```
//!
//! # Cross-camera sharing
//!
//! Fleets of co-located cameras drift together, so teacher labels produced
//! for one camera are often reusable by its peers. The [`share`] registry
//! (mirroring [`sched`], [`platform`], and [`arbiter`]) plugs a
//! [`share::SharePolicy`] into the cluster executor via
//! [`Cluster::share`]: cluster virtual time is divided into exchange
//! windows ([`Cluster::share_window_s`]), and at every boundary each
//! camera's freshly teacher-labeled samples are offered to every live peer
//! in camera admission-index order — a deterministic, single-threaded
//! barrier, so shared runs stay bit-identical across worker-thread counts.
//! The policy grants an admit fraction per (importer, exporter) pair;
//! admitted samples enter the importer's [`SampleBuffer`] at zero labeling
//! cost, and the savings are reported as [`ShareMetrics`] on
//! [`ClusterResult::share`] (labels reused, labeling seconds saved, import
//! rejects).
//!
//! Builtins: `"none"` (reserved; the sharing-free fast path, bit-identical
//! to pre-sharing clusters), `"broadcast"` (admit everything), and
//! `"correlated[:<threshold>]"` (admit only from peers whose scenarios
//! overlap in attributes at least `threshold`, per
//! [`Scenario::attribute_overlap`](dacapo_datagen::Scenario::attribute_overlap)).
//! Correlated fleet workloads come from
//! [`FleetScenario`](dacapo_datagen::FleetScenario), which derives N
//! per-camera scenarios from one base with controllable attribute overlap
//! and per-camera drift-time offsets:
//!
//! ```no_run
//! use dacapo_core::{Cluster, SimConfig};
//! use dacapo_datagen::{FleetScenario, Scenario};
//! use dacapo_dnn::zoo::ModelPair;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let scenarios =
//!     FleetScenario::new(Scenario::es1(), 16).overlap(0.8).offset_step_s(30.0).derive()?;
//! let mut cluster = Cluster::new(4).share("correlated:0.6").share_window_s(60.0);
//! for (i, scenario) in scenarios.into_iter().enumerate() {
//!     let config = SimConfig::builder(scenario, ModelPair::ResNet18Wrn50)
//!         .seed(0xDACA90 + i as u64)
//!         .build()?;
//!     cluster = cluster.camera(format!("cam-{i:02}"), config);
//! }
//! let result = cluster.run()?;
//! println!(
//!     "{} labels reused, {:.0} s of teacher labeling saved",
//!     result.share.labels_reused, result.share.labeling_seconds_saved,
//! );
//! # Ok(())
//! # }
//! ```
//!
//! # Edge–cloud tier
//!
//! Real deployments rarely get a cloud-grade teacher on-device. The
//! [`edge`] subsystem models the alternative: a camera configured with an
//! [`EdgeConfig`] owns a deterministic **uplink** ([`UplinkSpec`], resolved
//! through the uplink registry — `"broadband"`, `"wifi"`, `"lte"`,
//! `"degraded"`, each parameterisable as `"lte:<mbps>[,<latency_ms>]"`) to
//! a [`CloudTeacher`](dacapo_dnn::CloudTeacher): higher labeling accuracy
//! and zero local compute, paid for in uplink bytes and a round-trip
//! latency that delays label arrival into the [`SampleBuffer`]. An
//! EdgeCam-style near-duplicate **filter** drops frames whose scenario
//! attributes match the last shipped frame before they reach the uplink.
//!
//! Which tier labels a given window is decided by a pluggable
//! [`edge::OffloadPolicy`] selected via [`Cluster::offload`] — the sixth
//! registry family. Builtins: `"local-only"` (reserved; the edge-free fast
//! path, bit-identical to pre-edge clusters), `"cloud-only"`,
//! `"threshold:<queue-depth>"` (offload cameras on crowded accelerators),
//! and `"budget:<bytes-per-window>"`. Decisions happen at the same
//! deterministic window barriers as label sharing and churn, offloaded
//! labeling phases bypass accelerator arbitration (the cloud pays the
//! compute), and the telemetry lands in [`ClusterResult::edge`] as
//! [`EdgeMetrics`] — bytes shipped, frames filtered, local/cloud label
//! split, label-latency p50/p99, and the accuracy-per-byte headline.
//!
//! ```no_run
//! use dacapo_core::{Cluster, EdgeConfig, SimConfig};
//! use dacapo_datagen::Scenario;
//! use dacapo_dnn::zoo::ModelPair;
//!
//! # fn main() -> Result<(), dacapo_core::CoreError> {
//! let mut cluster = Cluster::new(2).offload("budget:20000000");
//! for (i, scenario) in Scenario::all().into_iter().enumerate() {
//!     let config = SimConfig::builder(scenario, ModelPair::ResNet18Wrn50)
//!         .edge(EdgeConfig::new("lte"))
//!         .seed(0xDACA90 + i as u64)
//!         .build()?;
//!     cluster = cluster.camera(format!("cam-{i}"), config);
//! }
//! let result = cluster.run()?;
//! println!(
//!     "{} cloud labels over {} bytes ({} frames filtered), accuracy/byte {:.3e}",
//!     result.edge.labels_cloud,
//!     result.edge.bytes_shipped,
//!     result.edge.frames_filtered,
//!     result.edge.accuracy_per_byte,
//! );
//! # Ok(())
//! # }
//! ```
//!
//! # Observability
//!
//! Everything the executor does can be tapped through [`SimObserver`]
//! without perturbing results. Beyond the original per-session event hooks
//! (`on_phase`, `on_drift`, `on_accuracy`, `on_finished`), the trait carries
//! default-method hooks for every cluster-level decision: step attribution
//! (`on_step_context`), a catch-all `on_event`, window barriers
//! (`on_window_barrier`), per-camera and per-accelerator state sampled at
//! those barriers (`on_window_sample` with a [`WindowSample`],
//! `on_accelerator_sample` with an [`AcceleratorSample`]), label-sharing
//! admissions (`on_share`), offload routing (`on_offload_route`), churn
//! (`on_churn_join` / `on_churn_leave` / `on_churn_drain` /
//! `on_migration`), and uplink transfers (`on_uplink_transfer`). All hooks
//! default to no-ops, so existing observers compile unchanged.
//!
//! The **window-barrier sampling contract**: observed cluster runs always
//! execute through the windowed path, and at every boundary the hooks fire
//! single-threaded in a fixed order — label exchange (`on_share`), churn
//! events, offload routing (`on_offload_route`), then `on_window_barrier`,
//! then one `on_window_sample` per live camera in admission-index order,
//! then one `on_accelerator_sample` per accelerator in index order. Because
//! the barrier is single-threaded and observed execution is serial, an
//! observer needs no synchronisation and sees a bit-identical stream at any
//! worker-thread count. The `dacapo-telemetry` crate builds its
//! chrome-trace/JSON-Lines recorder on exactly these hooks.
//!
//! # Snapshots and elastic membership
//!
//! A [`Session`] is an explicit state/behavior split: [`Session::snapshot`]
//! captures the complete mutable state (config, student weights, sample
//! buffer, teacher RNG, scheduler state via
//! [`sched::Scheduler::state`], stream cursor, partial timeline) as a
//! versioned, serde-able [`SessionSnapshot`], and [`Session::restore`]
//! rebuilds a session that continues **bit-identically** — even after the
//! snapshot round-trips through JSON text in another process
//! ([`SessionSnapshot::to_json`] / [`SessionSnapshot::from_json`]). A
//! snapshot from a different [`SNAPSHOT_VERSION`] is refused with
//! [`CoreError::Snapshot`] instead of being misread.
//!
//! On top of snapshots, the cluster executor supports **elastic
//! membership**: a [`ChurnPlan`] schedules cameras joining and leaving
//! mid-run and accelerators draining (their resident sessions
//! snapshot-migrate to the surviving accelerators through the standard
//! admission path). Churn executes at the same deterministic window
//! barriers as label sharing, so churn-bearing runs stay bit-identical
//! across worker-thread counts; telemetry lands in
//! [`ClusterResult::churn`] as [`ChurnMetrics`] (migrations, migration
//! stall seconds, peak residency, orphaned cameras).
//!
//! ```no_run
//! use dacapo_core::{ChurnPlan, Cluster, Session, SessionSnapshot, SimConfig};
//! use dacapo_datagen::Scenario;
//! use dacapo_dnn::zoo::ModelPair;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Checkpoint a running session to JSON and resume it later.
//! let config = SimConfig::builder(Scenario::s1(), ModelPair::ResNet18Wrn50).build()?;
//! let mut session = Session::new(config.clone())?;
//! while session.progress() < 0.5 {
//!     session.step()?;
//! }
//! let json = session.snapshot().to_json();
//! let mut resumed = Session::restore(SessionSnapshot::from_json(&json)?)?;
//! resumed.run_to_end()?; // bit-identical to never having stopped
//!
//! // An elastic cluster: a camera joins at t=300 s, accelerator 1 drains
//! // at t=600 s (its sessions migrate), and a camera leaves at t=900 s.
//! let plan = ChurnPlan::new()
//!     .join(300.0, "late", config.clone())
//!     .drain(600.0, 1)
//!     .leave(900.0, "cam-0");
//! let result = Cluster::new(2)
//!     .camera("cam-0", config.clone())
//!     .camera("cam-1", config)
//!     .churn(plan)
//!     .run()?;
//! println!("{} migrations", result.churn.migrations);
//! # Ok(())
//! # }
//! ```
//!
//! # Mapping to the paper
//!
//! * [`Hyperparams`] — Table I's resource-allocation hyperparameters
//!   (`N_t`, `N_v`, `N_l`, `N_ldd`, buffer capacity, drift threshold).
//! * [`SampleBuffer`] — the fixed-capacity labeled sample buffer.
//! * [`StudentModel`] / [`TeacherOracle`](dacapo_dnn::TeacherOracle) — the
//!   deployed student and the labeling teacher.
//! * [`PlatformRates`] — the execution platform's capability sheet (a
//!   spatially-partitioned DaCapo accelerator or a time-shared GPU
//!   baseline), built by [`platform`] providers from the `dacapo-accel`
//!   performance models.
//! * [`sched`] — the temporal resource allocators: the paper's
//!   spatiotemporal Algorithm 1 plus the DaCapo-Spatial, Ekya, and EOMU
//!   baselines, behind the pluggable-policy registry.
//!
//! # Examples
//!
//! Stepping a session and reacting to events:
//!
//! ```no_run
//! use dacapo_core::{Session, SessionEvent, SimConfig, SchedulerKind, PlatformKind};
//! use dacapo_datagen::Scenario;
//! use dacapo_dnn::zoo::ModelPair;
//!
//! # fn main() -> Result<(), dacapo_core::CoreError> {
//! let config = SimConfig::builder(Scenario::s1(), ModelPair::ResNet18Wrn50)
//!     .platform(PlatformKind::DaCapo)
//!     .scheduler(SchedulerKind::DaCapoSpatiotemporal)
//!     .build()?;
//! let mut session = Session::new(config)?;
//! loop {
//!     match session.step()? {
//!         SessionEvent::Drift { at_s, response_index } => {
//!             println!("drift response #{response_index} at {at_s:.0} s");
//!         }
//!         SessionEvent::Finished => break,
//!         _ => {}
//!     }
//! }
//! let result = session.into_result();
//! println!("mean accuracy {:.1}%", result.mean_accuracy * 100.0);
//! # Ok(())
//! # }
//! ```
//!
//! Driving a fleet of cameras in parallel:
//!
//! ```no_run
//! use dacapo_core::{Fleet, SimConfig};
//! use dacapo_datagen::Scenario;
//! use dacapo_dnn::zoo::ModelPair;
//!
//! # fn main() -> Result<(), dacapo_core::CoreError> {
//! let mut fleet = Fleet::new();
//! for (i, scenario) in Scenario::all().into_iter().enumerate() {
//!     let config = SimConfig::builder(scenario, ModelPair::ResNet18Wrn50)
//!         .seed(0xDACA90 + i as u64)
//!         .build()?;
//!     fleet = fleet.camera(format!("cam-{i}"), config);
//! }
//! let result = fleet.run()?;
//! println!(
//!     "{} cameras: mean {:.1}%, p10 {:.1}%, total {:.0} J",
//!     result.cameras.len(),
//!     result.mean_accuracy * 100.0,
//!     result.p10_accuracy * 100.0,
//!     result.total_energy_joules,
//! );
//! # Ok(())
//! # }
//! ```

pub mod arbiter;
mod buffer;
mod cluster;
mod config;
pub mod edge;
mod error;
mod fleet;
pub mod metrics;
pub mod platform;
pub mod registry;
pub mod sched;
mod session;
pub mod share;
mod sim;
mod student;

pub use buffer::{LabeledSample, SampleBuffer};
pub use cluster::{
    AdmissionPolicy, ChurnEvent, ChurnMetrics, ChurnPlan, Cluster, ClusterResult, ContentionMetrics,
};
pub use config::{Hyperparams, SimConfig, SimConfigBuilder};
pub use edge::{EdgeConfig, EdgeMetrics, LabelRoute, UplinkSpec};
pub use error::CoreError;
pub use fleet::{CameraResult, Fleet, FleetResult};
pub use platform::{PlatformKind, PlatformRates, PlatformSpec};
pub use sched::{SchedulerKind, SchedulerSpec};
pub use session::{
    AcceleratorSample, Session, SessionEvent, SessionSnapshot, SimObserver, WindowSample,
    SNAPSHOT_VERSION,
};
pub use share::ShareMetrics;
pub use sim::{ClSimulator, PhaseKind, PhaseRecord, SimResult};
pub use student::StudentModel;

/// Result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
