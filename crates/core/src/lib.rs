//! The DaCapo continuous-learning runtime.
//!
//! This crate is the paper's primary contribution reassembled in software: a
//! continuous-learning system that runs the three kernels — **inference**,
//! **labeling**, **retraining** — concurrently on a constrained platform and
//! allocates resources between them so end-to-end accuracy stays high through
//! data drift.
//!
//! The pieces map one-to-one onto the paper:
//!
//! * [`Hyperparams`] — Table I's resource-allocation hyperparameters
//!   (`N_t`, `N_v`, `N_l`, `N_ldd`, buffer capacity, drift threshold).
//! * [`SampleBuffer`] — the fixed-capacity labeled sample buffer.
//! * [`StudentModel`] / [`TeacherOracle`](dacapo_dnn::TeacherOracle) — the
//!   deployed student and the labeling teacher.
//! * [`PlatformRates`] — the execution platform (a spatially-partitioned
//!   DaCapo accelerator or a time-shared GPU baseline), derived from the
//!   `dacapo-accel` performance models.
//! * [`sched`] — the temporal resource allocators: the paper's
//!   spatiotemporal Algorithm 1 plus the DaCapo-Spatial, Ekya, and EOMU
//!   baselines.
//! * [`ClSimulator`] — the end-to-end system simulator that walks a drifting
//!   [`Scenario`](dacapo_datagen::Scenario), interleaves kernel execution per
//!   the scheduler and platform rates, and records accuracy over time, phase
//!   logs, frame drops, and energy.
//!
//! # Examples
//!
//! ```no_run
//! use dacapo_core::{ClSimulator, SimConfig, SchedulerKind, PlatformKind};
//! use dacapo_datagen::Scenario;
//! use dacapo_dnn::zoo::ModelPair;
//!
//! # fn main() -> Result<(), dacapo_core::CoreError> {
//! let config = SimConfig::builder(Scenario::s1(), ModelPair::ResNet18Wrn50)
//!     .platform(PlatformKind::DaCapo)
//!     .scheduler(SchedulerKind::DaCapoSpatiotemporal)
//!     .build()?;
//! let result = ClSimulator::new(config)?.run()?;
//! println!("mean accuracy {:.1}%", result.mean_accuracy * 100.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
mod config;
mod error;
pub mod metrics;
mod platform;
pub mod sched;
mod sim;
mod student;

pub use buffer::{LabeledSample, SampleBuffer};
pub use config::{Hyperparams, SimConfig, SimConfigBuilder};
pub use error::CoreError;
pub use platform::{PlatformKind, PlatformRates};
pub use sched::SchedulerKind;
pub use sim::{ClSimulator, PhaseKind, PhaseRecord, SimResult};
pub use student::StudentModel;

/// Result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
