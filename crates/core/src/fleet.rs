//! Multi-camera fleet driver: N independent [`Session`](crate::Session)s,
//! each with its own scenario, seed, and platform, aggregated into one
//! [`FleetResult`].
//!
//! A fleet is the contention-free corner of the cluster design space:
//! [`Fleet::run`] is a thin wrapper over a [`Cluster`](crate::Cluster) with
//! **one dedicated accelerator per camera**, so no session ever shares
//! hardware and every per-camera result is **bit-identical** to running that
//! camera's `Session` alone (property-tested) — worker threads only change
//! wall-clock time, never metrics. When cameras must share accelerators,
//! use [`Cluster`](crate::Cluster) directly and pick an arbitration policy.

use crate::cluster::Cluster;
use crate::config::SimConfig;
use crate::metrics::{mean, percentile};
use crate::sim::SimResult;
use crate::{CoreError, Result};
use serde::{Deserialize, Serialize};

/// One camera's outcome within a fleet run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CameraResult {
    /// The camera's name (unique within the fleet).
    pub camera: String,
    /// The camera's full simulation result, bit-identical to a solo run of
    /// the same configuration.
    pub result: SimResult,
}

/// Aggregate metrics over a completed fleet run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetResult {
    /// Per-camera results, in the order cameras were added.
    pub cameras: Vec<CameraResult>,
    /// Mean of the cameras' end-to-end accuracies.
    pub mean_accuracy: f64,
    /// Median (p50) camera accuracy.
    pub p50_accuracy: f64,
    /// 10th-percentile camera accuracy (the fleet's stragglers).
    pub p10_accuracy: f64,
    /// Worst camera accuracy.
    pub min_accuracy: f64,
    /// Total energy across all cameras in joules.
    pub total_energy_joules: f64,
    /// Stream-duration-weighted frame drop rate across the fleet.
    pub aggregate_drop_rate: f64,
    /// Total drift responses issued across the fleet.
    pub total_drift_responses: usize,
}

impl FleetResult {
    /// The camera result with the given name, if present.
    #[must_use]
    pub fn camera(&self, name: &str) -> Option<&SimResult> {
        self.cameras.iter().find(|c| c.camera == name).map(|c| &c.result)
    }
}

/// Builder-style driver for a fleet of camera sessions.
///
/// # Examples
///
/// ```no_run
/// use dacapo_core::{Fleet, SimConfig};
/// use dacapo_datagen::Scenario;
/// use dacapo_dnn::zoo::ModelPair;
///
/// # fn main() -> Result<(), dacapo_core::CoreError> {
/// let mut fleet = Fleet::new();
/// for (i, scenario) in Scenario::all().into_iter().enumerate() {
///     let config = SimConfig::builder(scenario, ModelPair::ResNet18Wrn50)
///         .seed(0xDACA90 + i as u64)
///         .build()?;
///     fleet = fleet.camera(format!("cam-{i}"), config);
/// }
/// let result = fleet.run()?;
/// println!("fleet mean accuracy {:.1}%", result.mean_accuracy * 100.0);
/// # Ok(())
/// # }
/// ```
pub struct Fleet {
    cameras: Vec<(String, SimConfig)>,
    threads: usize,
    share: String,
    share_window_s: Option<f64>,
}

impl Default for Fleet {
    fn default() -> Self {
        Self::new()
    }
}

impl Fleet {
    /// Creates an empty fleet sized to the machine's available parallelism,
    /// with cross-camera sharing disabled.
    #[must_use]
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
        Self { cameras: Vec::new(), threads, share: "none".to_string(), share_window_s: None }
    }

    /// Adds a camera with its own configuration (scenario, seed, platform,
    /// scheduler).
    #[must_use]
    pub fn camera(mut self, name: impl Into<String>, config: SimConfig) -> Self {
        self.cameras.push((name.into(), config));
        self
    }

    /// Caps the number of worker threads (at least one is always used).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Selects a cross-camera label-sharing policy by registry name (see
    /// [`crate::share::register`]); the default `"none"` keeps cameras fully
    /// independent. With an active policy, correlated cameras reuse each
    /// other's freshly teacher-labeled samples at window boundaries —
    /// per-camera results then legitimately differ from solo runs. Sharing
    /// telemetry is reported on [`crate::ClusterResult::share`]; run the
    /// fleet as a [`Cluster`] (one accelerator per camera) to read it.
    #[must_use]
    pub fn share(mut self, name: impl Into<String>) -> Self {
        self.share = name.into();
        self
    }

    /// Sets the sharing exchange window in virtual seconds (see
    /// [`Cluster::share_window_s`]); only consulted with an active share
    /// policy.
    #[must_use]
    pub fn share_window_s(mut self, window_s: f64) -> Self {
        self.share_window_s = Some(window_s);
        self
    }

    /// Number of cameras currently in the fleet.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cameras.len()
    }

    /// Whether the fleet has no cameras.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cameras.is_empty()
    }

    /// Runs every camera session to completion across the worker threads and
    /// aggregates the fleet metrics. Implemented as a [`Cluster`] with one
    /// dedicated accelerator per camera, so no arbitration ever slows a
    /// session down.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an empty fleet, duplicate
    /// camera names, or an invalid camera configuration, and propagates the
    /// first session error otherwise. Configurations are validated up front
    /// and a failing camera aborts the remaining queue, so a bad camera
    /// fails the run fast instead of after every other stream completes.
    pub fn run(self) -> Result<FleetResult> {
        Ok(self.into_cluster()?.run()?.fleet)
    }

    /// Like [`Fleet::run`], but forwards every session and barrier event to
    /// `observer` through the [`crate::SimObserver`] hooks, exactly as
    /// [`Cluster::run_with`](crate::Cluster::run_with) does. Execution is
    /// single-threaded so the observer needs no synchronisation; the
    /// returned result is identical to [`Fleet::run`]'s.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Fleet::run`].
    pub fn run_with(self, observer: &mut dyn crate::SimObserver) -> Result<FleetResult> {
        Ok(self.into_cluster()?.run_with(observer)?.fleet)
    }

    /// The fleet's underlying one-accelerator-per-camera cluster.
    fn into_cluster(self) -> Result<Cluster> {
        if self.cameras.is_empty() {
            return Err(CoreError::InvalidConfig {
                reason: "a fleet needs at least one camera".into(),
            });
        }
        let mut cluster = Cluster::new(self.cameras.len()).threads(self.threads).share(self.share);
        if let Some(window_s) = self.share_window_s {
            cluster = cluster.share_window_s(window_s);
        }
        for (name, config) in self.cameras {
            cluster = cluster.camera(name, config);
        }
        Ok(cluster)
    }
}

/// Prefixes a config error with the offending camera's name without
/// re-nesting the "invalid system configuration" wrapper.
pub(crate) fn prefix_camera(name: &str, error: CoreError) -> CoreError {
    let detail = match error {
        CoreError::InvalidConfig { reason } => reason,
        other => other.to_string(),
    };
    CoreError::InvalidConfig { reason: format!("camera '{name}': {detail}") }
}

/// Aggregates per-camera results into fleet-level metrics (shared by
/// [`Fleet`] and [`Cluster`]).
pub(crate) fn aggregate(cameras: Vec<CameraResult>) -> FleetResult {
    // A cluster whose every camera departed before starting has nothing to
    // aggregate; report zeros rather than a vacuous min of +inf.
    let min_floor = if cameras.is_empty() { 0.0 } else { f64::INFINITY };
    let accuracies: Vec<f64> = cameras.iter().map(|c| c.result.mean_accuracy).collect();
    let total_energy_joules = cameras.iter().map(|c| c.result.energy_joules).sum();
    let total_duration: f64 = cameras.iter().map(|c| c.result.duration_s).sum();
    let aggregate_drop_rate = if total_duration > 0.0 {
        cameras.iter().map(|c| c.result.frame_drop_rate * c.result.duration_s).sum::<f64>()
            / total_duration
    } else {
        0.0
    };
    FleetResult {
        mean_accuracy: mean(&accuracies),
        p50_accuracy: percentile(&accuracies, 50.0),
        p10_accuracy: percentile(&accuracies, 10.0),
        min_accuracy: accuracies.iter().copied().fold(min_floor, f64::min),
        total_energy_joules,
        aggregate_drop_rate,
        total_drift_responses: cameras.iter().map(|c| c.result.drift_responses).sum(),
        cameras,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::SchedulerKind;
    use crate::sim::test_support::short_config;

    #[test]
    fn empty_fleets_and_duplicate_names_are_rejected() {
        assert!(Fleet::new().run().is_err());
        let fleet = Fleet::new()
            .camera("a", short_config(SchedulerKind::NoAdaptation))
            .camera("a", short_config(SchedulerKind::NoAdaptation));
        let err = fleet.run().unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");
    }

    #[test]
    fn bad_camera_configs_fail_before_any_simulation_runs() {
        let mut broken = short_config(SchedulerKind::NoAdaptation);
        broken.scheduler = "not-a-registered-policy".into();
        let fleet = Fleet::new()
            .camera("good", short_config(SchedulerKind::NoAdaptation))
            .camera("broken", broken);
        let started = std::time::Instant::now();
        let err = fleet.run().unwrap_err();
        assert!(err.to_string().contains("broken"), "{err}");
        assert!(err.to_string().contains("not-a-registered-policy"), "{err}");
        assert_eq!(
            err.to_string().matches("invalid system configuration").count(),
            1,
            "camera prefixing must not nest the error wrapper: {err}"
        );
        // Pre-validation rejects the fleet without simulating the good
        // camera (which takes seconds in debug builds).
        assert!(started.elapsed().as_millis() < 500, "validation should fail fast");
    }

    #[test]
    fn unknown_platform_names_fail_fleet_prevalidation() {
        let mut broken = short_config(SchedulerKind::NoAdaptation);
        broken.platform = "warp-core".into();
        let err = Fleet::new()
            .camera("good", short_config(SchedulerKind::NoAdaptation))
            .camera("bad-platform", broken)
            .run()
            .unwrap_err();
        assert!(err.to_string().contains("bad-platform"), "{err}");
        assert!(err.to_string().contains("warp-core"), "{err}");
    }

    #[test]
    fn fleet_aggregates_match_per_camera_results() {
        let fleet = Fleet::new()
            .threads(2)
            .camera("calm", short_config(SchedulerKind::DaCapoSpatial))
            .camera("adaptive", short_config(SchedulerKind::DaCapoSpatiotemporal));
        let result = fleet.run().unwrap();
        assert_eq!(result.cameras.len(), 2);
        assert_eq!(result.cameras[0].camera, "calm");
        assert_eq!(result.cameras[1].camera, "adaptive");
        let expected_mean =
            (result.cameras[0].result.mean_accuracy + result.cameras[1].result.mean_accuracy) / 2.0;
        assert!((result.mean_accuracy - expected_mean).abs() < 1e-12);
        let expected_energy: f64 = result.cameras.iter().map(|c| c.result.energy_joules).sum();
        assert!((result.total_energy_joules - expected_energy).abs() < 1e-9);
        assert!(result.min_accuracy <= result.p50_accuracy);
        assert!(result.camera("calm").is_some());
        assert!(result.camera("missing").is_none());
    }

    #[test]
    fn parallel_results_are_bit_identical_to_solo_runs() {
        let solo = crate::ClSimulator::new(short_config(SchedulerKind::DaCapoSpatiotemporal))
            .unwrap()
            .run()
            .unwrap();
        let fleet = Fleet::new()
            .threads(4)
            .camera("one", short_config(SchedulerKind::DaCapoSpatiotemporal))
            .camera("two", short_config(SchedulerKind::DaCapoSpatiotemporal))
            .run()
            .unwrap();
        for camera in &fleet.cameras {
            assert_eq!(camera.result, solo);
        }
    }

    #[test]
    fn single_threaded_fleets_work() {
        let result = Fleet::new()
            .threads(1)
            .camera("only", short_config(SchedulerKind::NoAdaptation))
            .run()
            .unwrap();
        assert_eq!(result.cameras.len(), 1);
        assert_eq!(result.total_drift_responses, 0);
    }
}
