//! System configuration: Table I hyperparameters and the simulation config.

use crate::edge::EdgeConfig;
use crate::platform::{PlatformKind, PlatformRates, PlatformSpec};
use crate::sched::{SchedulerKind, SchedulerSpec};
use crate::{CoreError, Result};
use dacapo_accel::AccelConfig;
use dacapo_datagen::{Scenario, StreamConfig};
use dacapo_dnn::zoo::ModelPair;
use serde::{Deserialize, Serialize};

/// The resource-allocation hyperparameters of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Hyperparams {
    /// `N_t`: number of samples drawn from the buffer for one retraining phase.
    pub retrain_samples: usize,
    /// `N_v`: number of samples held out for validation (the paper sets it to
    /// one third of `N_t`).
    pub validation_samples: usize,
    /// `N_l`: number of samples labeled per labeling phase under normal
    /// conditions.
    pub label_samples: usize,
    /// `N_ldd / N_l`: multiplier applied to the labeling quota when data
    /// drift is detected (the paper uses 4).
    pub drift_label_multiplier: usize,
    /// `C_b`: capacity of the labeled sample buffer.
    pub buffer_capacity: usize,
    /// `V_thr`: drift threshold — drift is declared when the accuracy on
    /// freshly labeled data falls below the validation accuracy by more than
    /// this margin (Algorithm 1, line 11 uses `acc_l - acc_v < V_thr` with a
    /// negative threshold).
    pub drift_threshold: f64,
    /// Retraining epochs per phase.
    pub epochs: usize,
    /// Retraining mini-batch size (the paper uses 16).
    pub batch_size: usize,
    /// SGD learning rate (the paper uses 1e-3 for the CNN students; the small
    /// synthetic student trains with a proportionally larger rate).
    pub learning_rate: f32,
    /// Window length in seconds used by the fixed-window baselines
    /// (Ekya / DaCapo-Spatial).
    pub window_seconds: f64,
}

impl Default for Hyperparams {
    fn default() -> Self {
        Self {
            retrain_samples: 128,
            validation_samples: 42,
            label_samples: 96,
            drift_label_multiplier: 4,
            buffer_capacity: 512,
            drift_threshold: -0.10,
            epochs: 3,
            batch_size: 16,
            learning_rate: 0.02,
            window_seconds: 60.0,
        }
    }
}

impl Hyperparams {
    /// Hyperparameters tuned per model pair. Table I's values "are decided
    /// according to the model size, as it has a direct impact on the
    /// computational cost required for retraining" — heavier students get
    /// smaller per-phase sample counts so phases stay short enough to react
    /// to drift.
    #[must_use]
    pub fn for_pair(pair: dacapo_dnn::zoo::ModelPair) -> Self {
        use dacapo_dnn::zoo::ModelPair;
        match pair {
            ModelPair::ResNet18Wrn50 => Self::default(),
            ModelPair::VitB32VitB16 | ModelPair::ResNet34Wrn101 => Self {
                retrain_samples: 96,
                validation_samples: 32,
                label_samples: 64,
                // Smaller labeling/validation batches make the acc_l - acc_v
                // estimate noisier, so the drift threshold widens to keep the
                // false-positive rate (spurious buffer resets) low.
                drift_threshold: -0.13,
                ..Self::default()
            },
        }
    }

    /// `N_ldd`: samples to label when a drift is detected.
    #[must_use]
    pub fn drift_label_samples(&self) -> usize {
        self.label_samples * self.drift_label_multiplier
    }

    /// Validates the hyperparameters.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if any count is zero, the
    /// validation set is not smaller than the retraining set, or the buffer
    /// cannot hold one retraining draw.
    pub fn validate(&self) -> Result<()> {
        if self.retrain_samples == 0
            || self.validation_samples == 0
            || self.label_samples == 0
            || self.drift_label_multiplier == 0
            || self.buffer_capacity == 0
            || self.epochs == 0
            || self.batch_size == 0
        {
            return Err(CoreError::InvalidConfig {
                reason: "hyperparameter counts must all be positive".into(),
            });
        }
        if self.validation_samples >= self.retrain_samples {
            return Err(CoreError::InvalidConfig {
                reason: format!(
                    "validation set ({}) must be smaller than the retraining set ({})",
                    self.validation_samples, self.retrain_samples
                ),
            });
        }
        if self.buffer_capacity < self.retrain_samples + self.validation_samples {
            return Err(CoreError::InvalidConfig {
                reason: format!(
                    "buffer capacity {} cannot supply {} retraining + {} validation samples",
                    self.buffer_capacity, self.retrain_samples, self.validation_samples
                ),
            });
        }
        if self.window_seconds <= 0.0 || self.learning_rate <= 0.0 {
            return Err(CoreError::InvalidConfig {
                reason: "window length and learning rate must be positive".into(),
            });
        }
        Ok(())
    }
}

/// Full configuration of one end-to-end simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// The drifting workload scenario to run.
    pub scenario: Scenario,
    /// The (student, teacher) model pair.
    pub pair: ModelPair,
    /// Execution platform selection: a builtin kind, a registered provider
    /// by name (see [`crate::platform::register`]), or explicit rates.
    /// Resolved into [`PlatformRates`] by [`SimConfig::platform_rates`].
    pub platform: PlatformSpec,
    /// Accelerator hardware configuration consumed by DaCapo-family
    /// platform providers when the spec resolves.
    pub accel: AccelConfig,
    /// Temporal resource-allocation policy: a builtin kind or a registered
    /// policy selected by name (see [`crate::sched::register`]).
    pub scheduler: SchedulerSpec,
    /// Table I hyperparameters.
    pub hyper: Hyperparams,
    /// Synthetic stream configuration.
    pub stream: StreamConfig,
    /// Teacher labeling accuracy on easy samples.
    pub teacher_accuracy: f64,
    /// Seconds between accuracy measurements on the timeline.
    pub measure_interval_s: f64,
    /// Frames evaluated per accuracy measurement.
    pub eval_frames_per_measurement: usize,
    /// Number of pre-deployment warm-up samples used to pre-train the student
    /// on the general (mixed-context) distribution.
    pub pretrain_samples: usize,
    /// Master RNG seed.
    pub seed: u64,
    /// Optional edge–cloud tier: an uplink to a cloud teacher plus the
    /// near-duplicate filter (see [`crate::edge`]). `None` keeps the camera
    /// purely local.
    pub edge: Option<EdgeConfig>,
}

impl SimConfig {
    /// Starts building a configuration for a scenario and model pair with
    /// paper-default settings.
    #[must_use]
    pub fn builder(scenario: Scenario, pair: ModelPair) -> SimConfigBuilder {
        SimConfigBuilder {
            scenario,
            pair,
            platform: PlatformSpec::Kind(PlatformKind::DaCapo),
            scheduler: SchedulerSpec::Kind(SchedulerKind::DaCapoSpatiotemporal),
            hyper: Hyperparams::for_pair(pair),
            stream: StreamConfig::default(),
            teacher_accuracy: 0.95,
            measure_interval_s: 5.0,
            eval_frames_per_measurement: 40,
            pretrain_samples: 256,
            seed: 0xDACA90,
            accel: AccelConfig::default(),
            edge: None,
        }
    }

    /// Resolves the platform spec into the capability sheet the engine runs
    /// against, for this configuration's model pair, frame rate, and
    /// accelerator hardware.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an unregistered platform
    /// name or invalid provider parameters, and propagates provider errors
    /// (e.g. an infeasible spatial allocation).
    pub fn platform_rates(&self) -> Result<PlatformRates> {
        self.platform.resolve(self.pair, self.stream.fps, &self.accel)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for inconsistent settings.
    pub fn validate(&self) -> Result<()> {
        self.hyper.validate()?;
        // Surface bad stream parameters as a typed error here rather than
        // letting FrameStream::new panic mid-construction.
        self.stream.validate().map_err(|e| CoreError::InvalidConfig { reason: e.to_string() })?;
        if self.measure_interval_s <= 0.0 {
            return Err(CoreError::InvalidConfig {
                reason: "measurement interval must be positive".into(),
            });
        }
        if self.eval_frames_per_measurement == 0 {
            return Err(CoreError::InvalidConfig {
                reason: "need at least one evaluation frame per measurement".into(),
            });
        }
        if !(0.0..=1.0).contains(&self.teacher_accuracy) {
            return Err(CoreError::InvalidConfig {
                reason: "teacher accuracy must be in [0, 1]".into(),
            });
        }
        if let Some(edge) = &self.edge {
            edge.validate()?;
        }
        Ok(())
    }
}

/// Builder for [`SimConfig`].
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    scenario: Scenario,
    pair: ModelPair,
    platform: PlatformSpec,
    accel: AccelConfig,
    scheduler: SchedulerSpec,
    hyper: Hyperparams,
    stream: StreamConfig,
    teacher_accuracy: f64,
    measure_interval_s: f64,
    eval_frames_per_measurement: usize,
    pretrain_samples: usize,
    seed: u64,
    edge: Option<EdgeConfig>,
}

impl SimConfigBuilder {
    /// Selects the execution platform: a builtin [`PlatformKind`], the name
    /// of a provider registered with [`crate::platform::register`]
    /// (optionally parameterised, e.g. `.platform("scaled-dacapo:32")`), or
    /// explicit [`PlatformRates`]. This and [`Self::platform_rates`] write
    /// the same selection — the last call wins.
    #[must_use]
    pub fn platform(mut self, platform: impl Into<PlatformSpec>) -> Self {
        self.platform = platform.into();
        self
    }

    /// Uses fully custom platform rates instead of a registered platform
    /// (shorthand for `.platform(PlatformSpec::Rates(rates))`; the last of
    /// this and [`Self::platform`] wins).
    #[must_use]
    pub fn platform_rates(mut self, rates: PlatformRates) -> Self {
        self.platform = PlatformSpec::Rates(rates);
        self
    }

    /// Selects the temporal resource-allocation policy: a
    /// [`SchedulerKind`], or the name of a policy registered with
    /// [`crate::sched::register`] (e.g. `.scheduler("ekya")`).
    #[must_use]
    pub fn scheduler(mut self, scheduler: impl Into<SchedulerSpec>) -> Self {
        self.scheduler = scheduler.into();
        self
    }

    /// Overrides the Table I hyperparameters.
    #[must_use]
    pub fn hyperparams(mut self, hyper: Hyperparams) -> Self {
        self.hyper = hyper;
        self
    }

    /// Overrides the synthetic stream configuration.
    #[must_use]
    pub fn stream(mut self, stream: StreamConfig) -> Self {
        self.stream = stream;
        self
    }

    /// Overrides the accelerator hardware configuration consumed by
    /// DaCapo-family platform providers (e.g. [`PlatformKind::DaCapo`]).
    #[must_use]
    pub fn accelerator(mut self, accel: AccelConfig) -> Self {
        self.accel = accel;
        self
    }

    /// Overrides the teacher's labeling accuracy.
    #[must_use]
    pub fn teacher_accuracy(mut self, accuracy: f64) -> Self {
        self.teacher_accuracy = accuracy;
        self
    }

    /// Overrides the accuracy-measurement cadence.
    #[must_use]
    pub fn measurement(mut self, interval_s: f64, frames: usize) -> Self {
        self.measure_interval_s = interval_s;
        self.eval_frames_per_measurement = frames;
        self
    }

    /// Overrides the number of pre-deployment warm-up samples.
    #[must_use]
    pub fn pretrain_samples(mut self, samples: usize) -> Self {
        self.pretrain_samples = samples;
        self
    }

    /// Overrides the master RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Attaches an edge–cloud tier: an uplink profile to a cloud teacher
    /// plus the near-duplicate frame filter (see [`crate::edge`]). Without
    /// it the camera labels purely locally and offload policies skip it.
    #[must_use]
    pub fn edge(mut self, edge: EdgeConfig) -> Self {
        self.edge = Some(edge);
        self
    }

    /// Finalises the configuration, resolving the platform spec once to
    /// fail fast on bad selections.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for inconsistent settings or an
    /// unresolvable platform spec, and [`CoreError::Accel`] if the DaCapo
    /// spatial allocation is infeasible for the requested frame rate.
    pub fn build(self) -> Result<SimConfig> {
        let config = SimConfig {
            scenario: self.scenario,
            pair: self.pair,
            platform: self.platform,
            accel: self.accel,
            scheduler: self.scheduler,
            hyper: self.hyper,
            stream: self.stream,
            teacher_accuracy: self.teacher_accuracy,
            measure_interval_s: self.measure_interval_s,
            eval_frames_per_measurement: self.eval_frames_per_measurement,
            pretrain_samples: self.pretrain_samples,
            seed: self.seed,
            edge: self.edge,
        };
        config.validate()?;
        config.platform_rates()?;
        Ok(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_hyperparams_are_valid_and_match_paper_conventions() {
        let hp = Hyperparams::default();
        assert!(hp.validate().is_ok());
        assert_eq!(hp.batch_size, 16);
        assert_eq!(hp.drift_label_multiplier, 4);
        assert_eq!(hp.drift_label_samples(), 4 * hp.label_samples);
        // N_v is one third of N_t.
        assert_eq!(hp.validation_samples, hp.retrain_samples / 3);
    }

    #[test]
    fn invalid_hyperparams_are_rejected() {
        let hp = Hyperparams { retrain_samples: 0, ..Hyperparams::default() };
        assert!(hp.validate().is_err());
        let hp = Hyperparams { validation_samples: 500, ..Hyperparams::default() };
        assert!(hp.validate().is_err());
        let hp = Hyperparams { buffer_capacity: 10, ..Hyperparams::default() };
        assert!(hp.validate().is_err());
        let hp = Hyperparams { window_seconds: 0.0, ..Hyperparams::default() };
        assert!(hp.validate().is_err());
        let hp = Hyperparams { learning_rate: -1.0, ..Hyperparams::default() };
        assert!(hp.validate().is_err());
    }

    #[test]
    fn builder_produces_valid_default_config() {
        let config = SimConfig::builder(Scenario::s1(), ModelPair::ResNet18Wrn50).build().unwrap();
        assert_eq!(config.scheduler, SchedulerKind::DaCapoSpatiotemporal);
        assert_eq!(config.pair, ModelPair::ResNet18Wrn50);
        assert_eq!(config.platform, PlatformKind::DaCapo);
        assert!(config.platform_rates().unwrap().inference_fps_capacity() >= 30.0);
        assert!(config.validate().is_ok());
    }

    #[test]
    fn per_pair_hyperparameters_shrink_for_heavier_students() {
        let light = Hyperparams::for_pair(ModelPair::ResNet18Wrn50);
        let heavy = Hyperparams::for_pair(ModelPair::ResNet34Wrn101);
        let vit = Hyperparams::for_pair(ModelPair::VitB32VitB16);
        assert!(light.validate().is_ok());
        assert!(heavy.validate().is_ok());
        assert!(heavy.retrain_samples < light.retrain_samples);
        assert!(heavy.label_samples < light.label_samples);
        assert_eq!(vit.retrain_samples, heavy.retrain_samples);
        // The builder applies the per-pair tuning automatically.
        let config = SimConfig::builder(Scenario::s1(), ModelPair::ResNet34Wrn101).build().unwrap();
        assert_eq!(config.hyper, heavy);
    }

    #[test]
    fn builder_rejects_bad_overrides() {
        let result = SimConfig::builder(Scenario::s1(), ModelPair::ResNet18Wrn50)
            .measurement(0.0, 10)
            .build();
        assert!(result.is_err());
        let result = SimConfig::builder(Scenario::s1(), ModelPair::ResNet18Wrn50)
            .teacher_accuracy(1.5)
            .build();
        assert!(result.is_err());
    }

    #[test]
    fn builder_accepts_gpu_platforms_and_custom_seed() {
        let config = SimConfig::builder(Scenario::s2(), ModelPair::ResNet34Wrn101)
            .platform(PlatformKind::OrinHigh)
            .scheduler(SchedulerKind::Ekya)
            .seed(7)
            .build()
            .unwrap();
        assert_eq!(config.seed, 7);
        assert!(config.platform_rates().unwrap().name().contains("Orin"));
        assert_eq!(config.scheduler, SchedulerKind::Ekya);
    }

    #[test]
    fn builder_accepts_platforms_by_registered_name() {
        let config = SimConfig::builder(Scenario::s1(), ModelPair::ResNet18Wrn50)
            .platform("scaled-dacapo:32")
            .build()
            .unwrap();
        assert_eq!(config.platform, PlatformSpec::Named("scaled-dacapo:32".into()));
        let rates = config.platform_rates().unwrap();
        assert_eq!(rates.tsa_rows() + rates.bsa_rows(), 32);
        // Unregistered names fail at build time, not at session construction.
        let err = SimConfig::builder(Scenario::s1(), ModelPair::ResNet18Wrn50)
            .platform("quantum-annealer")
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("quantum-annealer"), "{err}");
    }

    #[test]
    fn builder_attaches_and_validates_the_edge_tier() {
        let config = SimConfig::builder(Scenario::s1(), ModelPair::ResNet18Wrn50)
            .edge(EdgeConfig::new("lte:20,30"))
            .build()
            .unwrap();
        assert_eq!(config.edge.as_ref().unwrap().uplink, "lte:20,30");
        // Default is purely local.
        let plain = SimConfig::builder(Scenario::s1(), ModelPair::ResNet18Wrn50).build().unwrap();
        assert!(plain.edge.is_none());
        // Bad edge settings fail at build time.
        let err = SimConfig::builder(Scenario::s1(), ModelPair::ResNet18Wrn50)
            .edge(EdgeConfig::new("no-such-uplink"))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("no-such-uplink"), "{err}");
        assert!(SimConfig::builder(Scenario::s1(), ModelPair::ResNet18Wrn50)
            .edge(EdgeConfig::new("lte").filter_threshold(2.0))
            .build()
            .is_err());
    }

    #[test]
    fn builder_threads_the_accelerator_config_to_named_platforms() {
        let config = SimConfig::builder(Scenario::s1(), ModelPair::ResNet18Wrn50)
            .platform("dacapo")
            .accelerator(AccelConfig::scaled_32x32())
            .build()
            .unwrap();
        let rates = config.platform_rates().unwrap();
        assert_eq!(rates.tsa_rows() + rates.bsa_rows(), 32);
        assert_eq!(config.accel, AccelConfig::scaled_32x32());
    }
}
