//! Error type for the continuous-learning runtime.

use std::error::Error;
use std::fmt;

/// Errors produced by the continuous-learning runtime and simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A system configuration was invalid.
    InvalidConfig {
        /// Explanation of what was wrong.
        reason: String,
    },
    /// A camera was denied admission to a cluster at its capacity bound
    /// (see [`Cluster::capacity_per_accelerator`] and
    /// [`AdmissionPolicy::Reject`]).
    ///
    /// [`Cluster::capacity_per_accelerator`]: crate::Cluster::capacity_per_accelerator
    /// [`AdmissionPolicy::Reject`]: crate::AdmissionPolicy::Reject
    AdmissionRejected {
        /// Name of the rejected camera.
        camera: String,
        /// Why the camera could not be admitted.
        reason: String,
    },
    /// A session snapshot could not be restored (unsupported format version,
    /// undecodable scheduler state, or inconsistent captured state).
    Snapshot {
        /// Why the snapshot was rejected.
        reason: String,
    },
    /// The student network failed.
    Dnn(dacapo_dnn::DnnError),
    /// The accelerator model failed (for example an infeasible allocation).
    Accel(dacapo_accel::AccelError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig { reason } => {
                write!(f, "invalid system configuration: {reason}")
            }
            CoreError::AdmissionRejected { camera, reason } => {
                write!(f, "admission rejected for camera '{camera}': {reason}")
            }
            CoreError::Snapshot { reason } => {
                write!(f, "cannot restore session snapshot: {reason}")
            }
            CoreError::Dnn(e) => write!(f, "student model error: {e}"),
            CoreError::Accel(e) => write!(f, "accelerator model error: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Dnn(e) => Some(e),
            CoreError::Accel(e) => Some(e),
            CoreError::InvalidConfig { .. }
            | CoreError::AdmissionRejected { .. }
            | CoreError::Snapshot { .. } => None,
        }
    }
}

impl From<dacapo_dnn::DnnError> for CoreError {
    fn from(e: dacapo_dnn::DnnError) -> Self {
        CoreError::Dnn(e)
    }
}

impl From<dacapo_accel::AccelError> for CoreError {
    fn from(e: dacapo_accel::AccelError) -> Self {
        CoreError::Accel(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources_are_wired_up() {
        let e = CoreError::InvalidConfig { reason: "empty scenario".into() };
        assert!(e.to_string().contains("empty scenario"));
        assert!(std::error::Error::source(&e).is_none());

        let inner = dacapo_accel::AccelError::Infeasible { reason: "too fast".into() };
        let e: CoreError = inner.into();
        assert!(e.to_string().contains("too fast"));
        assert!(std::error::Error::source(&e).is_some());

        let inner = dacapo_dnn::DnnError::InvalidLabels { reason: "bad".into() };
        let e: CoreError = inner.into();
        assert!(std::error::Error::source(&e).is_some());

        let e = CoreError::AdmissionRejected { camera: "cam-7".into(), reason: "full".into() };
        assert!(e.to_string().contains("cam-7"));
        assert!(e.to_string().contains("admission rejected"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
