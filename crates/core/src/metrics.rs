//! Aggregation helpers for experiment reporting.

use crate::sim::SimResult;
use serde::{Deserialize, Serialize};

/// Geometric mean of a slice of positive values (the aggregate Figure 9 uses
/// across scenarios). Returns 0 for an empty slice.
///
/// Every value is clamped to a `1e-12` floor before taking logs, so zeros,
/// negatives, and NaNs all contribute the floor instead of poisoning the
/// result — `geometric_mean(&[f64::NAN])` is `1e-12`, not NaN.
///
/// # Examples
///
/// ```
/// use dacapo_core::metrics::geometric_mean;
///
/// let g = geometric_mean(&[0.5, 0.5, 0.5]);
/// assert!((g - 0.5).abs() < 1e-12);
/// ```
#[must_use]
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean of a slice. Returns 0 for an empty slice; a NaN anywhere
/// in the slice propagates to the result (standard IEEE summation).
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Nearest-rank percentile of a slice (`pct` in `[0, 100]`), used by the
/// fleet and cluster aggregates. Returns 0 for an empty slice.
///
/// Values are ranked by IEEE total order ([`f64::total_cmp`]), so
/// NaN-bearing slices never panic: positive NaNs rank above `+∞` (and
/// negative NaNs below `-∞`), which means a NaN only surfaces for
/// percentiles that land on the NaN tail — `percentile(&[1.0, NAN], 50.0)`
/// is `1.0`, while `percentile(&[1.0, NAN], 100.0)` is NaN.
///
/// # Panics
///
/// Panics if `pct` is outside `[0, 100]`.
#[must_use]
pub fn percentile(values: &[f64], pct: f64) -> f64 {
    assert!((0.0..=100.0).contains(&pct), "percentile {pct} out of range");
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// One row of a Figure 9-style accuracy table: a system evaluated on a set of
/// scenarios for one model pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemSummary {
    /// System name (platform / scheduler).
    pub system: String,
    /// Per-scenario mean accuracy, in scenario order.
    pub per_scenario_accuracy: Vec<(String, f64)>,
    /// Geometric mean across scenarios.
    pub gmean_accuracy: f64,
    /// Mean energy per scenario run in joules.
    pub mean_energy_joules: f64,
    /// Platform power in watts.
    pub power_watts: f64,
}

/// Summarises a set of per-scenario results for one system.
///
/// Returns `None` when `results` is empty — there is no meaningful "system"
/// to name without at least one result. NaN accuracies are absorbed by
/// [`geometric_mean`]'s `1e-12` floor (the gmean stays finite), while a NaN
/// energy propagates into `mean_energy_joules` per [`mean`]'s contract.
#[must_use]
pub fn summarize_system(results: &[SimResult]) -> Option<SystemSummary> {
    let first = results.first()?;
    let per_scenario: Vec<(String, f64)> =
        results.iter().map(|r| (r.scenario.clone(), r.mean_accuracy)).collect();
    let accuracies: Vec<f64> = per_scenario.iter().map(|(_, a)| *a).collect();
    Some(SystemSummary {
        system: first.system.clone(),
        gmean_accuracy: geometric_mean(&accuracies),
        per_scenario_accuracy: per_scenario,
        mean_energy_joules: mean(&results.iter().map(|r| r.energy_joules).collect::<Vec<_>>()),
        power_watts: first.power_watts,
    })
}

/// Accuracy difference of `a` over `b` in percentage points (the unit the
/// paper's headline improvements are stated in).
#[must_use]
pub fn accuracy_gain_points(a: f64, b: f64) -> f64 {
    (a - b) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::SchedulerKind;
    use dacapo_dnn::zoo::ModelPair;

    fn result(scenario: &str, accuracy: f64, energy: f64) -> SimResult {
        SimResult {
            system: "test-system".into(),
            scenario: scenario.into(),
            pair: ModelPair::ResNet18Wrn50,
            scheduler: SchedulerKind::DaCapoSpatiotemporal.to_string(),
            accuracy_timeline: vec![(0.0, accuracy)],
            mean_accuracy: accuracy,
            frame_drop_rate: 0.0,
            energy_joules: energy,
            power_watts: 0.236,
            phases: Vec::new(),
            drift_responses: 0,
            duration_s: 1200.0,
        }
    }

    #[test]
    fn geometric_mean_basics() {
        assert_eq!(geometric_mean(&[]), 0.0);
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[0.7]) - 0.7).abs() < 1e-12);
        // gmean <= arithmetic mean.
        let values = [0.6, 0.9, 0.75];
        assert!(geometric_mean(&values) <= mean(&values));
    }

    #[test]
    fn summarize_system_aggregates_scenarios() {
        let results = vec![result("S1", 0.8, 100.0), result("S2", 0.7, 200.0)];
        let summary = summarize_system(&results).unwrap();
        assert_eq!(summary.per_scenario_accuracy.len(), 2);
        assert!((summary.gmean_accuracy - (0.8f64 * 0.7).sqrt()).abs() < 1e-12);
        assert!((summary.mean_energy_joules - 150.0).abs() < 1e-12);
        assert_eq!(summary.power_watts, 0.236);
        assert!(summarize_system(&[]).is_none());
    }

    #[test]
    fn accuracy_gain_is_in_percentage_points() {
        assert!((accuracy_gain_points(0.815, 0.75) - 6.5).abs() < 1e-9);
    }

    #[test]
    fn percentile_uses_nearest_rank() {
        assert_eq!(percentile(&[], 50.0), 0.0);
        let values = [0.9, 0.1, 0.5, 0.3, 0.7];
        assert_eq!(percentile(&values, 0.0), 0.1);
        assert_eq!(percentile(&values, 50.0), 0.5);
        assert_eq!(percentile(&values, 10.0), 0.1);
        assert_eq!(percentile(&values, 100.0), 0.9);
    }

    #[test]
    fn percentile_ranks_nans_on_the_tail_without_panicking() {
        let values = [1.0, f64::NAN, 0.5];
        // NaN ranks above every real number, so mid percentiles stay real…
        assert_eq!(percentile(&values, 50.0), 1.0);
        assert_eq!(percentile(&values, 0.0), 0.5);
        // …and only the NaN tail surfaces it.
        assert!(percentile(&values, 100.0).is_nan());
        assert!(percentile(&[f64::NAN], 50.0).is_nan());
        // Negative NaNs rank below every real number.
        assert_eq!(percentile(&[f64::NAN.copysign(-1.0), 2.0], 100.0), 2.0);
    }

    #[test]
    fn empty_and_nan_edge_behavior_of_the_means() {
        assert_eq!(mean(&[]), 0.0);
        assert!(mean(&[1.0, f64::NAN]).is_nan(), "mean propagates NaN");
        assert_eq!(geometric_mean(&[]), 0.0);
        // The gmean clamps NaNs (and zeros, and negatives) to its 1e-12
        // floor instead of poisoning the aggregate.
        assert!((geometric_mean(&[f64::NAN]) - 1e-12).abs() < 1e-24);
        assert!(geometric_mean(&[0.8, f64::NAN]).is_finite());
        assert!((geometric_mean(&[0.0, 4.0]) - (1e-12f64 * 4.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summarize_system_edge_behavior_is_defined_for_nan_results() {
        assert!(summarize_system(&[]).is_none(), "no results, no system to summarise");
        let nan_accuracy = result("S1", f64::NAN, 100.0);
        let summary = summarize_system(&[nan_accuracy, result("S2", 0.8, 200.0)]).unwrap();
        assert!(summary.gmean_accuracy.is_finite(), "gmean absorbs NaN accuracies");
        assert!((summary.mean_energy_joules - 150.0).abs() < 1e-12);
        let summary =
            summarize_system(&[result("S1", 0.8, f64::NAN), result("S2", 0.8, 200.0)]).unwrap();
        assert!(summary.mean_energy_joules.is_nan(), "NaN energy propagates");
    }
}
