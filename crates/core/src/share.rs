//! Cross-camera label-sharing policies and their pluggable registry.
//!
//! Fleets of co-located cameras see **correlated** drift, so teacher labels
//! produced for one camera are often useful to its peers — reusing them cuts
//! the fleet's aggregate labeling cost while per-camera accuracy holds. When
//! a [`Cluster`](crate::Cluster) runs with sharing enabled
//! ([`Cluster::share`](crate::Cluster::share)), the executor divides cluster
//! virtual time into fixed windows
//! ([`Cluster::share_window_s`](crate::Cluster::share_window_s)); at every
//! window boundary each camera *exports* the samples its teacher freshly
//! labeled during the window, and every live peer asks the cluster's
//! [`SharePolicy`] which fraction of each export batch to *admit* into its
//! own [`SampleBuffer`](crate::SampleBuffer). Admitted imports cost the
//! importer nothing — the labeling work already happened on the exporter —
//! and the savings are reported as
//! [`ShareMetrics::labeling_seconds_saved`].
//!
//! Exchanges are deterministic: importers and exporters are walked in
//! camera admission-index order at each boundary, so cluster runs stay
//! bit-identical across worker-thread counts.
//!
//! # Pluggable policies
//!
//! Policies are constructed through trait-object factories, mirroring
//! [`crate::sched::register`], [`crate::platform::register`], and
//! [`crate::arbiter::register`]: implement [`SharePolicy`] and
//! [`SharePolicyFactory`], [`register`] the factory, and select it by name
//! via [`Cluster::share`](crate::Cluster::share). Names may carry a
//! `:<params>` suffix forwarded to the factory. Three builtins are
//! pre-registered:
//!
//! * `"none"` — sharing disabled; the cluster takes the exact same execution
//!   path (and produces bit-identical results) as a cluster built before the
//!   share subsystem existed. The name is **reserved**: [`register`] rejects
//!   factories trying to claim it.
//! * `"broadcast"` — every camera admits every peer's full export batch.
//! * `"correlated[:<threshold>]"` — a camera admits a peer's exports only
//!   when the two cameras' scenarios overlap in attributes
//!   ([`Scenario::attribute_overlap`](dacapo_datagen::Scenario::attribute_overlap))
//!   at least `threshold` (default `0.5`), the ECCO-style exploitation of
//!   cross-camera correlation.

use crate::registry::{split_params, ParamNames, Registry};
use crate::{CoreError, Result};
use serde::{Deserialize, Serialize};
use std::sync::{Arc, OnceLock};

/// Everything a [`SharePolicy`] gets to decide one import admission: one
/// (importer, exporter) pair at one window boundary.
#[derive(Debug, Clone, Copy)]
pub struct ShareContext<'a> {
    /// Index of the exchange window that just ended (0-based).
    pub window_index: usize,
    /// Cluster virtual time of the window boundary, in seconds.
    pub boundary_s: f64,
    /// Name of the camera offering its freshly labeled samples.
    pub exporter: &'a str,
    /// The exporter's cluster camera index (admission order).
    pub exporter_index: usize,
    /// Name of the camera deciding whether to admit the batch.
    pub importer: &'a str,
    /// The importer's cluster camera index (admission order).
    pub importer_index: usize,
    /// Attribute overlap between the two cameras' scenarios in `[0, 1]`
    /// (see [`Scenario::attribute_overlap`](dacapo_datagen::Scenario::attribute_overlap)).
    pub correlation: f64,
    /// Number of samples in the exporter's batch this window.
    pub fresh_labels: usize,
}

/// A cross-camera label-sharing policy.
///
/// `Send` is required so the policy can live inside a cluster run that
/// spreads accelerator loops across worker threads; the policy itself is
/// only ever invoked at single-threaded window barriers, in deterministic
/// (importer, exporter) admission order, so implementations may keep state.
pub trait SharePolicy: Send {
    /// The policy's display name (used for reporting, e.g. `"broadcast"`).
    fn name(&self) -> String;

    /// Returns the fraction of the exporter's batch the importer admits,
    /// in `[0, 1]` (`0` = admit nothing, `1` = admit everything; the
    /// admitted count is the fraction of the batch size, rounded to the
    /// nearest sample). The executor validates the fraction and errors on
    /// non-finite or out-of-range values.
    fn admit_fraction(&mut self, ctx: &ShareContext<'_>) -> f64;
}

/// Trait-object factory for sharing policies, the extension point of the
/// share registry.
pub trait SharePolicyFactory: Send + Sync {
    /// The canonical (case-insensitive) base name the factory registers
    /// under, without any parameter suffix.
    fn name(&self) -> &str;

    /// Builds a fresh policy for one cluster run.
    ///
    /// # Errors
    ///
    /// Factories must validate `params` (the `:<suffix>` of the selected
    /// name, if any) and return [`CoreError::InvalidConfig`] for malformed
    /// parameters rather than panicking.
    fn build(&self, params: Option<&str>) -> Result<Box<dyn SharePolicy>>;
}

/// Telemetry of one cluster run's cross-camera sharing: how much teacher
/// labeling work the fleet avoided by reusing peers' labels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShareMetrics {
    /// The sharing policy name the cluster ran under (`"none"` when
    /// sharing was disabled).
    pub policy: String,
    /// Exchange window length in cluster virtual seconds.
    pub window_s: f64,
    /// Number of calendar exchange windows spanning the run — the index of
    /// the last window boundary, counting from 1, so
    /// `windows * window_s >= makespan` (`0` when sharing was disabled).
    /// Event-free windows are skipped without a barrier but still counted;
    /// they exchange nothing either way.
    pub windows: usize,
    /// Freshly teacher-labeled samples offered for export across the run.
    pub labels_exported: usize,
    /// Imported samples admitted into peers' buffers — each one a teacher
    /// labeling invocation some camera did *not* have to pay for itself.
    pub labels_reused: usize,
    /// Teacher labeling time the importers saved, summed over admissions at
    /// each importer's own effective labeling rate, in seconds.
    pub labeling_seconds_saved: f64,
    /// (importer, exporter, window) offers the policy declined outright
    /// (granted an admit fraction of exactly `0`). A positive fraction too
    /// small to round to one sample is not counted as a reject.
    pub import_rejects: usize,
}

impl ShareMetrics {
    /// Metrics of a run that never exchanged anything (policy `name`,
    /// usually `"none"`).
    #[must_use]
    pub(crate) fn disabled(window_s: f64) -> Self {
        Self::fresh("none".to_string(), window_s)
    }

    /// Zeroed metrics for a run about to start under `policy`.
    #[must_use]
    pub(crate) fn fresh(policy: String, window_s: f64) -> Self {
        Self {
            policy,
            window_s,
            windows: 0,
            labels_exported: 0,
            labels_reused: 0,
            labeling_seconds_saved: 0.0,
            import_rejects: 0,
        }
    }
}

// --------------------------------------------------------------------------
// Builtin policies
// --------------------------------------------------------------------------

/// `"none"`: sharing disabled.
struct NoSharing;

impl SharePolicy for NoSharing {
    fn name(&self) -> String {
        "none".to_string()
    }

    fn admit_fraction(&mut self, _ctx: &ShareContext<'_>) -> f64 {
        0.0
    }
}

struct NoSharingFactory;

impl SharePolicyFactory for NoSharingFactory {
    fn name(&self) -> &str {
        "none"
    }

    fn build(&self, params: Option<&str>) -> Result<Box<dyn SharePolicy>> {
        if let Some(params) = params {
            return Err(CoreError::InvalidConfig {
                reason: format!("share policy 'none' takes no parameters, got ':{params}'"),
            });
        }
        Ok(Box::new(NoSharing))
    }
}

/// `"broadcast"`: every camera admits every peer's full batch.
struct Broadcast;

impl SharePolicy for Broadcast {
    fn name(&self) -> String {
        "broadcast".to_string()
    }

    fn admit_fraction(&mut self, _ctx: &ShareContext<'_>) -> f64 {
        1.0
    }
}

struct BroadcastFactory;

impl SharePolicyFactory for BroadcastFactory {
    fn name(&self) -> &str {
        "broadcast"
    }

    fn build(&self, params: Option<&str>) -> Result<Box<dyn SharePolicy>> {
        if let Some(params) = params {
            return Err(CoreError::InvalidConfig {
                reason: format!("share policy 'broadcast' takes no parameters, got ':{params}'"),
            });
        }
        Ok(Box::new(Broadcast))
    }
}

/// `"correlated[:<threshold>]"`: admit everything from peers whose scenario
/// attribute overlap reaches the threshold, nothing from the rest.
struct Correlated {
    threshold: f64,
}

impl SharePolicy for Correlated {
    fn name(&self) -> String {
        format!("correlated:{}", self.threshold)
    }

    fn admit_fraction(&mut self, ctx: &ShareContext<'_>) -> f64 {
        if ctx.correlation >= self.threshold {
            1.0
        } else {
            0.0
        }
    }
}

struct CorrelatedFactory;

impl SharePolicyFactory for CorrelatedFactory {
    fn name(&self) -> &str {
        "correlated"
    }

    fn build(&self, params: Option<&str>) -> Result<Box<dyn SharePolicy>> {
        let threshold = match params {
            None => 0.5,
            Some(raw) => raw.trim().parse::<f64>().map_err(|_| CoreError::InvalidConfig {
                reason: format!("correlated expects a numeric threshold, got ':{raw}'"),
            })?,
        };
        if !(threshold.is_finite() && (0.0..=1.0).contains(&threshold)) {
            return Err(CoreError::InvalidConfig {
                reason: format!(
                    "correlated threshold must lie in [0, 1], got {threshold} (overlaps are \
                     fractions of the common timeline)"
                ),
            });
        }
        Ok(Box::new(Correlated { threshold }))
    }
}

// --------------------------------------------------------------------------
// Registry
// --------------------------------------------------------------------------

/// The global share registry, seeded with the builtin policies; storage and
/// lookup rules live in [`crate::registry`].
fn registry() -> &'static Registry<dyn SharePolicyFactory> {
    static REGISTRY: OnceLock<Registry<dyn SharePolicyFactory>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let builtins: [Arc<dyn SharePolicyFactory>; 3] =
            [Arc::new(NoSharingFactory), Arc::new(BroadcastFactory), Arc::new(CorrelatedFactory)];
        Registry::new(
            "share policy",
            ParamNames::Split,
            // The disabled policy is load-bearing: clusters take a
            // sharing-free fast path for `"none"`, so replacing it could
            // silently diverge from that guarantee.
            &["none"],
            builtins.into_iter().map(|f| (f.name().to_string(), f)).collect(),
        )
    })
}

/// Registers (or replaces) a share-policy factory under its case-insensitive
/// [`SharePolicyFactory::name`].
///
/// # Panics
///
/// Panics if the factory's name contains `':'` (reserved for parameter
/// suffixes during lookup) or is `"none"` — the reserved disabled policy.
pub fn register(factory: Arc<dyn SharePolicyFactory>) {
    let name = factory.name().to_string();
    registry().register(&name, factory);
}

/// Looks up a share-policy factory by case-insensitive name. A `:<params>`
/// suffix, if present, is ignored for the lookup
/// (`by_name("correlated:0.7")` resolves the `"correlated"` factory).
#[must_use]
pub fn by_name(name: &str) -> Option<Arc<dyn SharePolicyFactory>> {
    registry().by_name(name)
}

/// The base names of every registered sharing policy, sorted.
#[must_use]
pub fn registered_names() -> Vec<String> {
    registry().names()
}

/// Whether `name` selects the reserved disabled policy (`"none"`, in any
/// case) — the cluster executor takes its sharing-free fast path for it.
#[must_use]
pub fn is_disabled(name: &str) -> bool {
    split_params(name).0.eq_ignore_ascii_case("none")
}

/// Instantiates the sharing policy selected by `name` (with optional
/// `:<params>` suffix) for one cluster run.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] for an unregistered name or
/// malformed parameters.
pub fn create(name: &str) -> Result<Box<dyn SharePolicy>> {
    let (base, params) = split_params(name);
    let factory = by_name(base).ok_or_else(|| CoreError::InvalidConfig {
        reason: format!(
            "unknown share policy '{base}'; registered policies: {}",
            registered_names().join(", ")
        ),
    })?;
    factory.build(params)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn context(correlation: f64) -> ShareContext<'static> {
        ShareContext {
            window_index: 0,
            boundary_s: 60.0,
            exporter: "cam-0",
            exporter_index: 0,
            importer: "cam-1",
            importer_index: 1,
            correlation,
            fresh_labels: 32,
        }
    }

    #[test]
    fn none_admits_nothing_and_broadcast_everything() {
        let mut none = create("none").unwrap();
        let mut broadcast = create("broadcast").unwrap();
        for correlation in [0.0, 0.5, 1.0] {
            assert_eq!(none.admit_fraction(&context(correlation)), 0.0);
            assert_eq!(broadcast.admit_fraction(&context(correlation)), 1.0);
        }
        assert_eq!(none.name(), "none");
        assert_eq!(broadcast.name(), "broadcast");
        assert!(create("none:1").is_err(), "none takes no parameters");
        assert!(create("broadcast:0.5").is_err(), "broadcast takes no parameters");
    }

    #[test]
    fn correlated_thresholds_gate_on_overlap() {
        let mut policy = create("correlated:0.7").unwrap();
        assert_eq!(policy.admit_fraction(&context(0.8)), 1.0);
        assert_eq!(policy.admit_fraction(&context(0.7)), 1.0, "threshold is inclusive");
        assert_eq!(policy.admit_fraction(&context(0.69)), 0.0);
        assert_eq!(policy.name(), "correlated:0.7");
        // The default threshold is 0.5.
        let mut default = create("correlated").unwrap();
        assert_eq!(default.admit_fraction(&context(0.5)), 1.0);
        assert_eq!(default.admit_fraction(&context(0.4)), 0.0);
    }

    #[test]
    fn correlated_rejects_malformed_thresholds() {
        assert!(create("correlated:fast").is_err());
        assert!(create("correlated:-0.1").is_err());
        assert!(create("correlated:1.5").is_err());
        assert!(create("correlated:NaN").is_err());
        assert!(create("correlated: 0.25 ").is_ok(), "whitespace around the threshold is fine");
    }

    #[test]
    fn registry_resolves_case_insensitively_and_lists_builtins() {
        assert!(by_name("BROADCAST").is_some());
        assert!(by_name("Correlated:0.9").is_some());
        assert!(by_name("no-such-policy").is_none());
        let names = registered_names();
        for builtin in ["none", "broadcast", "correlated"] {
            assert!(names.contains(&builtin.to_string()), "{builtin} missing from {names:?}");
        }
        let err = match create("no-such-policy") {
            Err(err) => err,
            Ok(_) => panic!("unknown policy must not resolve"),
        };
        assert!(err.to_string().contains("no-such-policy"), "{err}");
        assert!(err.to_string().contains("registered policies"), "{err}");
    }

    #[test]
    fn disabled_detection_ignores_case_but_not_other_names() {
        assert!(is_disabled("none"));
        assert!(is_disabled("NONE"));
        assert!(!is_disabled("broadcast"));
        assert!(!is_disabled("nonesuch"));
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn registering_over_the_reserved_none_policy_panics() {
        struct Impostor;
        impl SharePolicyFactory for Impostor {
            fn name(&self) -> &str {
                "none"
            }
            fn build(&self, _params: Option<&str>) -> Result<Box<dyn SharePolicy>> {
                Ok(Box::new(Broadcast))
            }
        }
        register(Arc::new(Impostor));
    }

    #[test]
    fn external_factories_plug_in_through_the_registry() {
        /// A policy no builtin knows about: admit half of every batch.
        struct HalfShare;
        impl SharePolicy for HalfShare {
            fn name(&self) -> String {
                "half-share".to_string()
            }
            fn admit_fraction(&mut self, _ctx: &ShareContext<'_>) -> f64 {
                0.5
            }
        }
        struct HalfShareFactory;
        impl SharePolicyFactory for HalfShareFactory {
            fn name(&self) -> &str {
                "half-share"
            }
            fn build(&self, _params: Option<&str>) -> Result<Box<dyn SharePolicy>> {
                Ok(Box::new(HalfShare))
            }
        }

        register(Arc::new(HalfShareFactory));
        let mut policy = create("half-share").unwrap();
        assert_eq!(policy.admit_fraction(&context(0.0)), 0.5);
        assert!(registered_names().contains(&"half-share".to_string()));
    }

    #[test]
    fn fresh_metrics_start_zeroed() {
        let metrics = ShareMetrics::fresh("broadcast".into(), 60.0);
        assert_eq!(metrics.labels_exported, 0);
        assert_eq!(metrics.labels_reused, 0);
        assert_eq!(metrics.labeling_seconds_saved, 0.0);
        assert_eq!(metrics.import_rejects, 0);
        assert_eq!(metrics.windows, 0);
        let disabled = ShareMetrics::disabled(30.0);
        assert_eq!(disabled.policy, "none");
        assert_eq!(disabled.window_s, 30.0);
    }
}
