//! The edge–cloud tier: modeled uplinks, near-duplicate frame filtering,
//! and pluggable offload policies.
//!
//! Every camera in the base system owns a *local* teacher; the premise of an
//! autonomous deployment is that it usually cannot. This module adds the
//! missing tier: a camera may ship sampled frames over a deterministic,
//! bandwidth/latency-modeled **uplink** ([`UplinkSpec`]) to a
//! [`CloudTeacher`] — higher labeling accuracy and
//! zero local compute, paid for in uplink bytes and a round-trip latency
//! that delays label arrival into the
//! [`SampleBuffer`](crate::SampleBuffer). An EdgeCam-style **filter stage**
//! drops near-duplicate frames before they reach the uplink, and a
//! pluggable [`OffloadPolicy`] decides *per exchange window* (the same
//! deterministic barriers label sharing and churn use) whether each camera
//! labels locally or in the cloud.
//!
//! # Registries
//!
//! Two registry families mirror [`crate::sched`], [`crate::platform`],
//! [`crate::arbiter`], and [`crate::share`]:
//!
//! * **Uplink profiles** ([`register_uplink`] / [`uplink_by_name`] /
//!   [`create_uplink`]) resolve a name like `"lte"` or `"wifi:100,15"` into
//!   an [`UplinkSpec`]. Builtins: `"broadband"` (100 Mbit/s, 10 ms),
//!   `"wifi"` (54 Mbit/s, 20 ms), `"lte"` (12 Mbit/s, 60 ms), and
//!   `"degraded"` (0.25 Mbit/s, 200 ms); each accepts an optional
//!   `:<mbps>[,<latency_ms>]` parameter suffix describing a whole family of
//!   links through one name.
//! * **Offload policies** ([`register_offload`] / [`offload_by_name`] /
//!   [`create_offload`]) choose a [`LabelRoute`] per camera per window.
//!   Builtins: `"local-only"` (**reserved** — the cluster takes the exact
//!   pre-cloud fast path for it, mirroring the share registry's `"none"`),
//!   `"cloud-only"`, `"threshold:<queue-depth>"` (offload when more than
//!   `queue-depth` cameras share the accelerator), and
//!   `"budget:<bytes-per-window>"` (cloud labeling under a per-window uplink
//!   byte budget, falling back to the local teacher once it is spent).
//!
//! Offload decisions ride the cluster's single-threaded window barriers in
//! camera admission-index order, so edge-tier runs stay bit-identical
//! across worker-thread counts; policy state survives checkpoints through
//! the [`OffloadPolicy::state`] / [`OffloadPolicy::restore_state`] hooks,
//! exactly like schedulers.

use crate::buffer::LabeledSample;
use crate::registry::{split_params, ParamNames, Registry};
use crate::{CoreError, Result};
use dacapo_datagen::SegmentAttributes;
use dacapo_dnn::CloudTeacher;
use serde::{Deserialize, Serialize, Value};
use std::sync::{Arc, OnceLock};

/// Default per-frame payload overhead in bytes: the encoded frame crop plus
/// protocol headers that ride the uplink on top of the raw feature tensor.
/// All builtin uplink profiles use it.
pub const DEFAULT_FRAME_OVERHEAD_BYTES: u64 = 60_000;

/// How long a shipped frame keeps suppressing near-duplicates, in stream
/// seconds: the filter similarity decays linearly to zero over this horizon,
/// so even a static scene ships a refresher frame at least this often.
pub const FILTER_HORIZON_S: f64 = 2.0;

// --------------------------------------------------------------------------
// Uplink model
// --------------------------------------------------------------------------

/// A deterministic model of one camera's uplink to the cloud tier.
///
/// Shipping a frame charges `frame_overhead_bytes` plus the raw feature
/// bytes, transfers at `bandwidth_bps` (the uplink is serial: a frame waits
/// for the previous transfer to finish), and its label arrives back
/// `latency_s` after the transfer completes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UplinkSpec {
    bandwidth_bps: f64,
    latency_s: f64,
    frame_overhead_bytes: u64,
}

impl UplinkSpec {
    /// Creates an uplink model.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] unless `bandwidth_bps` is finite
    /// and positive and `latency_s` is finite and non-negative.
    pub fn new(bandwidth_bps: f64, latency_s: f64, frame_overhead_bytes: u64) -> Result<Self> {
        if !(bandwidth_bps.is_finite() && bandwidth_bps > 0.0) {
            return Err(CoreError::InvalidConfig {
                reason: format!(
                    "uplink bandwidth must be finite and positive, got {bandwidth_bps} bit/s"
                ),
            });
        }
        if !(latency_s.is_finite() && latency_s >= 0.0) {
            return Err(CoreError::InvalidConfig {
                reason: format!(
                    "uplink latency must be finite and non-negative, got {latency_s} s"
                ),
            });
        }
        Ok(Self { bandwidth_bps, latency_s, frame_overhead_bytes })
    }

    /// Uplink bandwidth in bits per second.
    #[must_use]
    pub fn bandwidth_bps(&self) -> f64 {
        self.bandwidth_bps
    }

    /// One-way label round-trip latency in seconds, added after a frame's
    /// transfer completes.
    #[must_use]
    pub fn latency_s(&self) -> f64 {
        self.latency_s
    }

    /// Per-frame payload overhead in bytes (encoded frame + headers).
    #[must_use]
    pub fn frame_overhead_bytes(&self) -> u64 {
        self.frame_overhead_bytes
    }

    /// Total bytes one shipped frame costs for a `feature_dim`-float sample.
    #[must_use]
    pub fn frame_bytes(&self, feature_dim: usize) -> u64 {
        self.frame_overhead_bytes + (feature_dim as u64) * 4
    }

    /// Seconds one frame of `frame_bytes` occupies the uplink.
    #[must_use]
    pub fn transfer_s(&self, frame_bytes: u64) -> f64 {
        (frame_bytes as f64) * 8.0 / self.bandwidth_bps
    }
}

/// Trait-object factory for uplink profiles, the extension point of the
/// uplink registry: resolves an optional `:<params>` suffix into a concrete
/// [`UplinkSpec`].
pub trait UplinkProvider: Send + Sync {
    /// The canonical (case-insensitive) base name the provider registers
    /// under, without any parameter suffix.
    fn name(&self) -> &str;

    /// Builds the uplink model for one camera.
    ///
    /// # Errors
    ///
    /// Providers must validate `params` and return
    /// [`CoreError::InvalidConfig`] for malformed parameters rather than
    /// panicking.
    fn build(&self, params: Option<&str>) -> Result<UplinkSpec>;
}

/// One builtin link-technology profile: a default bandwidth/latency point,
/// overridable through a `:<mbps>[,<latency_ms>]` parameter suffix.
struct ProfileUplink {
    name: &'static str,
    default_mbps: f64,
    default_latency_ms: f64,
}

impl UplinkProvider for ProfileUplink {
    fn name(&self) -> &str {
        self.name
    }

    fn build(&self, params: Option<&str>) -> Result<UplinkSpec> {
        let (mut mbps, mut latency_ms) = (self.default_mbps, self.default_latency_ms);
        if let Some(raw) = params {
            let mut parts = raw.splitn(2, ',');
            let mbps_raw = parts.next().unwrap_or("").trim();
            mbps = mbps_raw.parse::<f64>().map_err(|_| CoreError::InvalidConfig {
                reason: format!(
                    "uplink profile '{}' expects ':<mbps>[,<latency_ms>]', got ':{raw}'",
                    self.name
                ),
            })?;
            if let Some(latency_raw) = parts.next() {
                latency_ms =
                    latency_raw.trim().parse::<f64>().map_err(|_| CoreError::InvalidConfig {
                        reason: format!(
                            "uplink profile '{}' expects a numeric latency in ms, got '{latency_raw}'",
                            self.name
                        ),
                    })?;
            }
        }
        UplinkSpec::new(mbps * 1e6, latency_ms / 1e3, DEFAULT_FRAME_OVERHEAD_BYTES)
    }
}

// --------------------------------------------------------------------------
// Offload policies
// --------------------------------------------------------------------------

/// Where one camera's next labeling window runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LabelRoute {
    /// Label on the local teacher (the pre-cloud behavior).
    Local,
    /// Ship filtered frames to the cloud teacher over the uplink.
    Cloud {
        /// Optional per-window uplink byte budget: once the camera has
        /// shipped this many bytes inside the current window, further
        /// labeling phases fall back to the local teacher until the next
        /// window boundary resets the meter.
        byte_budget: Option<u64>,
    },
}

/// Everything an [`OffloadPolicy`] gets to route one camera's next window.
#[derive(Debug, Clone, Copy)]
pub struct OffloadContext<'a> {
    /// Index of the exchange window about to start (0-based; decisions are
    /// taken at the barrier *opening* the window).
    pub window_index: usize,
    /// Cluster virtual time of the window boundary, in seconds.
    pub boundary_s: f64,
    /// Name of the camera being routed.
    pub camera: &'a str,
    /// The camera's cluster camera index (admission order).
    pub camera_index: usize,
    /// Index of the accelerator the camera resides on.
    pub accelerator: usize,
    /// Number of live sessions currently sharing that accelerator,
    /// including this camera — the local labeling queue depth.
    pub resident_cameras: usize,
    /// Number of samples currently in the camera's buffer.
    pub buffer_len: usize,
    /// Uplink bytes the camera has shipped across the whole run so far.
    pub bytes_shipped: u64,
    /// Uplink bytes the camera shipped during the window that just ended.
    pub window_bytes: u64,
}

/// A per-window local-vs-cloud labeling routing policy.
///
/// `Send` is required so the policy can live inside a cluster run that
/// spreads accelerator loops across worker threads; it is only ever invoked
/// at single-threaded window barriers, in deterministic camera
/// admission-index order, so implementations may keep state. Stateful
/// policies should implement [`OffloadPolicy::state`] /
/// [`OffloadPolicy::restore_state`] (mirroring
/// [`Scheduler::state`](crate::sched::Scheduler::state)) so their decision
/// state can ride checkpoints.
pub trait OffloadPolicy: Send {
    /// The policy's display name (used for reporting, e.g. `"cloud-only"`).
    fn name(&self) -> String;

    /// Routes one camera's next labeling window.
    fn route(&mut self, ctx: &OffloadContext<'_>) -> LabelRoute;

    /// The policy's serialisable decision state (`Null` for stateless
    /// policies, the default).
    fn state(&self) -> Value {
        Value::Null
    }

    /// Restores state previously captured by [`OffloadPolicy::state`].
    ///
    /// # Errors
    ///
    /// The default implementation accepts only `Null`; stateful policies
    /// must override both hooks and return [`CoreError::Snapshot`] (or
    /// [`CoreError::InvalidConfig`]) for undecodable state.
    fn restore_state(&mut self, state: &Value) -> Result<()> {
        if matches!(state, Value::Null) {
            Ok(())
        } else {
            Err(CoreError::Snapshot {
                reason: format!(
                    "offload policy '{}' is stateless but the snapshot carries state",
                    self.name()
                ),
            })
        }
    }
}

/// Trait-object factory for offload policies, the extension point of the
/// offload registry.
pub trait OffloadPolicyFactory: Send + Sync {
    /// The canonical (case-insensitive) base name the factory registers
    /// under, without any parameter suffix.
    fn name(&self) -> &str;

    /// Builds a fresh policy for one cluster run.
    ///
    /// # Errors
    ///
    /// Factories must validate `params` (the `:<suffix>` of the selected
    /// name, if any) and return [`CoreError::InvalidConfig`] for malformed
    /// parameters rather than panicking.
    fn build(&self, params: Option<&str>) -> Result<Box<dyn OffloadPolicy>>;
}

/// `"local-only"`: every window labels on the local teacher.
struct LocalOnly;

impl OffloadPolicy for LocalOnly {
    fn name(&self) -> String {
        "local-only".to_string()
    }

    fn route(&mut self, _ctx: &OffloadContext<'_>) -> LabelRoute {
        LabelRoute::Local
    }
}

struct LocalOnlyFactory;

impl OffloadPolicyFactory for LocalOnlyFactory {
    fn name(&self) -> &str {
        "local-only"
    }

    fn build(&self, params: Option<&str>) -> Result<Box<dyn OffloadPolicy>> {
        if let Some(params) = params {
            return Err(CoreError::InvalidConfig {
                reason: format!("offload policy 'local-only' takes no parameters, got ':{params}'"),
            });
        }
        Ok(Box::new(LocalOnly))
    }
}

/// `"cloud-only"`: every window ships to the cloud teacher.
struct CloudOnly;

impl OffloadPolicy for CloudOnly {
    fn name(&self) -> String {
        "cloud-only".to_string()
    }

    fn route(&mut self, _ctx: &OffloadContext<'_>) -> LabelRoute {
        LabelRoute::Cloud { byte_budget: None }
    }
}

struct CloudOnlyFactory;

impl OffloadPolicyFactory for CloudOnlyFactory {
    fn name(&self) -> &str {
        "cloud-only"
    }

    fn build(&self, params: Option<&str>) -> Result<Box<dyn OffloadPolicy>> {
        if let Some(params) = params {
            return Err(CoreError::InvalidConfig {
                reason: format!("offload policy 'cloud-only' takes no parameters, got ':{params}'"),
            });
        }
        Ok(Box::new(CloudOnly))
    }
}

/// `"threshold:<queue-depth>"`: offload a camera exactly when its local
/// accelerator is crowded — more than `queue-depth` live sessions sharing
/// it — so the cloud absorbs labeling load the contended accelerator would
/// otherwise serialise.
struct Threshold {
    depth: usize,
}

impl OffloadPolicy for Threshold {
    fn name(&self) -> String {
        format!("threshold:{}", self.depth)
    }

    fn route(&mut self, ctx: &OffloadContext<'_>) -> LabelRoute {
        if ctx.resident_cameras > self.depth {
            LabelRoute::Cloud { byte_budget: None }
        } else {
            LabelRoute::Local
        }
    }
}

struct ThresholdFactory;

impl OffloadPolicyFactory for ThresholdFactory {
    fn name(&self) -> &str {
        "threshold"
    }

    fn build(&self, params: Option<&str>) -> Result<Box<dyn OffloadPolicy>> {
        let raw = params.ok_or_else(|| CoreError::InvalidConfig {
            reason: "offload policy 'threshold' requires a queue depth, e.g. 'threshold:2'"
                .to_string(),
        })?;
        let depth = raw.trim().parse::<usize>().map_err(|_| CoreError::InvalidConfig {
            reason: format!("threshold expects an integer queue depth, got ':{raw}'"),
        })?;
        Ok(Box::new(Threshold { depth }))
    }
}

/// `"budget:<bytes-per-window>"`: always prefer the cloud teacher, but cap
/// each window's uplink spend — once the budget is shipped, the camera's
/// remaining labeling phases that window fall back to the local teacher.
struct Budget {
    bytes_per_window: u64,
}

impl OffloadPolicy for Budget {
    fn name(&self) -> String {
        format!("budget:{}", self.bytes_per_window)
    }

    fn route(&mut self, _ctx: &OffloadContext<'_>) -> LabelRoute {
        LabelRoute::Cloud { byte_budget: Some(self.bytes_per_window) }
    }
}

struct BudgetFactory;

impl OffloadPolicyFactory for BudgetFactory {
    fn name(&self) -> &str {
        "budget"
    }

    fn build(&self, params: Option<&str>) -> Result<Box<dyn OffloadPolicy>> {
        let raw = params.ok_or_else(|| CoreError::InvalidConfig {
            reason: "offload policy 'budget' requires a per-window byte budget, e.g. \
                     'budget:5000000'"
                .to_string(),
        })?;
        let bytes_per_window = raw.trim().parse::<u64>().map_err(|_| CoreError::InvalidConfig {
            reason: format!("budget expects an integer byte count per window, got ':{raw}'"),
        })?;
        if bytes_per_window == 0 {
            return Err(CoreError::InvalidConfig {
                reason: "budget of 0 bytes per window never ships anything; use 'local-only'"
                    .to_string(),
            });
        }
        Ok(Box::new(Budget { bytes_per_window }))
    }
}

// --------------------------------------------------------------------------
// Registries
// --------------------------------------------------------------------------

/// The global offload-policy registry, seeded with the builtin policies.
fn offload_registry() -> &'static Registry<dyn OffloadPolicyFactory> {
    static REGISTRY: OnceLock<Registry<dyn OffloadPolicyFactory>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let builtins: [Arc<dyn OffloadPolicyFactory>; 4] = [
            Arc::new(LocalOnlyFactory),
            Arc::new(CloudOnlyFactory),
            Arc::new(ThresholdFactory),
            Arc::new(BudgetFactory),
        ];
        Registry::new(
            "offload policy",
            ParamNames::Split,
            // The local-only policy is load-bearing: clusters take the
            // cloud-free fast path for it, so replacing it could silently
            // diverge from that guarantee.
            &["local-only"],
            builtins.into_iter().map(|f| (f.name().to_string(), f)).collect(),
        )
    })
}

/// The global uplink-profile registry, seeded with the builtin link
/// technologies.
fn uplink_registry() -> &'static Registry<dyn UplinkProvider> {
    static REGISTRY: OnceLock<Registry<dyn UplinkProvider>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let builtins: [Arc<dyn UplinkProvider>; 4] = [
            Arc::new(ProfileUplink {
                name: "broadband",
                default_mbps: 100.0,
                default_latency_ms: 10.0,
            }),
            Arc::new(ProfileUplink { name: "wifi", default_mbps: 54.0, default_latency_ms: 20.0 }),
            Arc::new(ProfileUplink { name: "lte", default_mbps: 12.0, default_latency_ms: 60.0 }),
            Arc::new(ProfileUplink {
                name: "degraded",
                default_mbps: 0.25,
                default_latency_ms: 200.0,
            }),
        ];
        Registry::new(
            "uplink profile",
            ParamNames::Split,
            &[],
            builtins.into_iter().map(|f| (f.name().to_string(), f)).collect(),
        )
    })
}

/// Registers (or replaces) an offload-policy factory under its
/// case-insensitive [`OffloadPolicyFactory::name`].
///
/// # Panics
///
/// Panics if the factory's name contains `':'` (reserved for parameter
/// suffixes during lookup) or is `"local-only"` — the reserved cloud-free
/// policy.
pub fn register_offload(factory: Arc<dyn OffloadPolicyFactory>) {
    let name = factory.name().to_string();
    offload_registry().register(&name, factory);
}

/// Looks up an offload-policy factory by case-insensitive name. A
/// `:<params>` suffix, if present, is ignored for the lookup
/// (`offload_by_name("budget:5000000")` resolves the `"budget"` factory).
#[must_use]
pub fn offload_by_name(name: &str) -> Option<Arc<dyn OffloadPolicyFactory>> {
    offload_registry().by_name(name)
}

/// The base names of every registered offload policy, sorted.
#[must_use]
pub fn registered_offload_policies() -> Vec<String> {
    offload_registry().names()
}

/// Whether `name` selects the reserved cloud-free policy (`"local-only"`,
/// in any case) — the cluster executor takes its edge-free fast path for it.
#[must_use]
pub fn is_local_only(name: &str) -> bool {
    split_params(name).0.eq_ignore_ascii_case("local-only")
}

/// Instantiates the offload policy selected by `name` (with optional
/// `:<params>` suffix) for one cluster run.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] for an unregistered name or
/// malformed parameters.
pub fn create_offload(name: &str) -> Result<Box<dyn OffloadPolicy>> {
    let (base, params) = split_params(name);
    let factory = offload_by_name(base).ok_or_else(|| CoreError::InvalidConfig {
        reason: format!(
            "unknown offload policy '{base}'; registered policies: {}",
            registered_offload_policies().join(", ")
        ),
    })?;
    factory.build(params)
}

/// Registers (or replaces) an uplink provider under its case-insensitive
/// [`UplinkProvider::name`].
///
/// # Panics
///
/// Panics if the provider's name contains `':'` (reserved for parameter
/// suffixes during lookup).
pub fn register_uplink(provider: Arc<dyn UplinkProvider>) {
    let name = provider.name().to_string();
    uplink_registry().register(&name, provider);
}

/// Looks up an uplink provider by case-insensitive name, ignoring a
/// `:<params>` suffix (`uplink_by_name("lte:20")` resolves `"lte"`).
#[must_use]
pub fn uplink_by_name(name: &str) -> Option<Arc<dyn UplinkProvider>> {
    uplink_registry().by_name(name)
}

/// The base names of every registered uplink profile, sorted.
#[must_use]
pub fn registered_uplinks() -> Vec<String> {
    uplink_registry().names()
}

/// Resolves the uplink profile selected by `name` (with optional
/// `:<params>` suffix) into a concrete [`UplinkSpec`].
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] for an unregistered name or
/// malformed parameters.
pub fn create_uplink(name: &str) -> Result<UplinkSpec> {
    let (base, params) = split_params(name);
    let provider = uplink_by_name(base).ok_or_else(|| CoreError::InvalidConfig {
        reason: format!(
            "unknown uplink profile '{base}'; registered profiles: {}",
            registered_uplinks().join(", ")
        ),
    })?;
    provider.build(params)
}

// --------------------------------------------------------------------------
// Per-camera edge configuration
// --------------------------------------------------------------------------

/// One camera's edge-tier configuration, stored in
/// [`SimConfig`](crate::SimConfig) (see
/// [`SimConfigBuilder::edge`](crate::SimConfigBuilder::edge)).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdgeConfig {
    /// Uplink profile name resolved through the uplink registry, with
    /// optional `:<mbps>[,<latency_ms>]` parameters (e.g. `"lte"`,
    /// `"wifi:100,15"`).
    pub uplink: String,
    /// Near-duplicate filter threshold in `[0, 1]`: a sampled frame is
    /// dropped before the uplink when its similarity to the last shipped
    /// frame — attribute agreement decayed linearly over
    /// [`FILTER_HORIZON_S`] — reaches the threshold. `1.0` ships every
    /// frame; lower values filter more aggressively; `0.0` ships only one
    /// frame per horizon.
    pub filter_threshold: f64,
    /// Base accuracy of the cloud labeling tier in `[0, 1]` (see
    /// [`CloudTeacher`]; difficult frames cost it
    /// only a quarter of the local teacher's penalty).
    pub cloud_accuracy: f64,
}

impl EdgeConfig {
    /// An edge tier over the named uplink profile with the default filter
    /// threshold (`0.9`) and cloud accuracy (`0.99`).
    #[must_use]
    pub fn new(uplink: impl Into<String>) -> Self {
        Self { uplink: uplink.into(), filter_threshold: 0.9, cloud_accuracy: 0.99 }
    }

    /// Sets the near-duplicate filter threshold.
    #[must_use]
    pub fn filter_threshold(mut self, threshold: f64) -> Self {
        self.filter_threshold = threshold;
        self
    }

    /// Sets the cloud tier's base labeling accuracy.
    #[must_use]
    pub fn cloud_accuracy(mut self, accuracy: f64) -> Self {
        self.cloud_accuracy = accuracy;
        self
    }

    /// Validates the configuration, resolving the uplink profile.
    pub(crate) fn validate(&self) -> Result<()> {
        if !(self.filter_threshold.is_finite() && (0.0..=1.0).contains(&self.filter_threshold)) {
            return Err(CoreError::InvalidConfig {
                reason: format!(
                    "edge filter threshold must lie in [0, 1], got {}",
                    self.filter_threshold
                ),
            });
        }
        if !(self.cloud_accuracy.is_finite() && (0.0..=1.0).contains(&self.cloud_accuracy)) {
            return Err(CoreError::InvalidConfig {
                reason: format!(
                    "cloud teacher accuracy must lie in [0, 1], got {}",
                    self.cloud_accuracy
                ),
            });
        }
        create_uplink(&self.uplink).map(|_| ())
    }
}

// --------------------------------------------------------------------------
// Session-side edge tier
// --------------------------------------------------------------------------

/// One cloud label on the wire: shipped, labeled, not yet delivered into
/// the camera's buffer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InFlightLabel {
    /// The cloud-labeled sample awaiting delivery.
    pub sample: LabeledSample,
    /// Session virtual time at which the label lands in the buffer.
    pub arrival_s: f64,
}

/// The last frame that cleared the near-duplicate filter, against which new
/// candidates are compared.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShippedMark {
    /// Stream timestamp of the shipped frame.
    pub at_s: f64,
    /// Scenario attributes active when it was captured.
    pub attributes: SegmentAttributes,
}

/// The complete mutable state of one camera's edge tier — everything a
/// [`SessionSnapshot`](crate::SessionSnapshot) must capture so a restored
/// session resumes bit-identically mid-offload, in-flight cloud labels and
/// all.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdgeTierState {
    /// The cloud labeling tier, including its exact RNG state.
    pub cloud: CloudTeacher,
    /// Where the camera's labeling currently routes.
    pub route: LabelRoute,
    /// Cloud labels shipped but not yet arrived, in arrival order.
    pub in_flight: Vec<InFlightLabel>,
    /// The filter's comparison anchor, if any frame has shipped yet.
    pub last_shipped: Option<ShippedMark>,
    /// Earliest time the serial uplink can start the next transfer.
    pub uplink_free_at_s: f64,
    /// Bytes shipped inside the current exchange window (reset at each
    /// window boundary; the meter [`LabelRoute::Cloud::byte_budget`] caps).
    pub window_bytes: u64,
    /// Total uplink bytes shipped across the run.
    pub bytes_shipped: u64,
    /// Frames that cleared the filter and went over the uplink.
    pub frames_shipped: u64,
    /// Frames the near-duplicate filter dropped before the uplink.
    pub frames_filtered: u64,
    /// Samples labeled by the local teacher while the edge tier was
    /// configured.
    pub labels_local: u64,
    /// Samples labeled by the cloud tier.
    pub labels_cloud: u64,
    /// Per-label uplink-induced delays (transfer + latency) in seconds.
    pub cloud_latencies_s: Vec<f64>,
    /// Whether the most recent labeling phase ran on the cloud tier (the
    /// cluster executor exempts such phases from accelerator arbitration —
    /// they cost no local compute).
    pub last_phase_offloaded: bool,
}

/// One camera's live edge tier: the resolved uplink (behavior, rebuilt from
/// config on restore) plus the mutable [`EdgeTierState`].
#[derive(Debug, Clone)]
pub(crate) struct EdgeTier {
    // snapshot: skip(spec) — behavior, re-resolved from EdgeConfig through
    // the uplink registry on restore
    spec: UplinkSpec,
    // snapshot: skip(filter_threshold) — copied verbatim from EdgeConfig on
    // both construction and restore
    filter_threshold: f64,
    // snapshot: skip(frame_bytes) — derived from the resolved spec and the
    // session's feature_dim
    frame_bytes: u64,
    pub(crate) state: EdgeTierState,
}

impl EdgeTier {
    /// Builds a fresh edge tier for a session with `feature_dim`-float
    /// samples over `num_classes` classes.
    pub(crate) fn new(
        config: &EdgeConfig,
        num_classes: usize,
        feature_dim: usize,
        seed: u64,
    ) -> Result<Self> {
        config.validate()?;
        let spec = create_uplink(&config.uplink)?;
        let frame_bytes = spec.frame_bytes(feature_dim);
        Ok(Self {
            spec,
            filter_threshold: config.filter_threshold,
            frame_bytes,
            state: EdgeTierState {
                cloud: CloudTeacher::new(num_classes, config.cloud_accuracy, seed),
                route: LabelRoute::Local,
                in_flight: Vec::new(),
                last_shipped: None,
                uplink_free_at_s: 0.0,
                window_bytes: 0,
                bytes_shipped: 0,
                frames_shipped: 0,
                frames_filtered: 0,
                labels_local: 0,
                labels_cloud: 0,
                cloud_latencies_s: Vec::new(),
                last_phase_offloaded: false,
            },
        })
    }

    /// Rebuilds a tier from its configuration and captured state (the
    /// restore path; the uplink is re-resolved through the registry).
    pub(crate) fn resume(
        config: &EdgeConfig,
        feature_dim: usize,
        state: EdgeTierState,
    ) -> Result<Self> {
        config.validate()?;
        let spec = create_uplink(&config.uplink)?;
        let frame_bytes = spec.frame_bytes(feature_dim);
        Ok(Self { spec, filter_threshold: config.filter_threshold, frame_bytes, state })
    }

    /// The route the *next labeling phase* should take: the window's route,
    /// downgraded to local once a byte budget is spent.
    pub(crate) fn phase_route(&self) -> LabelRoute {
        match self.state.route {
            LabelRoute::Cloud { byte_budget: Some(budget) }
                if self.state.window_bytes >= budget =>
            {
                LabelRoute::Local
            }
            route => route,
        }
    }

    /// Frames per second the uplink can ship: bandwidth-bound, capped at
    /// the stream rate (a camera cannot ship frames it has not captured).
    pub(crate) fn labeling_sps(&self, fps: f64) -> f64 {
        (self.spec.bandwidth_bps / 8.0 / self.frame_bytes as f64).min(fps)
    }

    /// Offers one sampled frame to the uplink. Returns the cloud-labeled
    /// sample if the frame cleared the near-duplicate filter and shipped
    /// (it is also queued in-flight until its arrival time), or `None` if
    /// the filter dropped it.
    pub(crate) fn offer(
        &mut self,
        features: Vec<f32>,
        true_class: usize,
        timestamp_s: f64,
        attributes: &SegmentAttributes,
    ) -> Option<LabeledSample> {
        if let Some(mark) = &self.state.last_shipped {
            let similarity = attribute_similarity(&mark.attributes, attributes)
                * (1.0 - (timestamp_s - mark.at_s) / FILTER_HORIZON_S).max(0.0);
            if similarity >= self.filter_threshold {
                self.state.frames_filtered += 1;
                return None;
            }
        }
        let transfer_s = self.spec.transfer_s(self.frame_bytes);
        let completion_s = timestamp_s.max(self.state.uplink_free_at_s) + transfer_s;
        self.state.uplink_free_at_s = completion_s;
        let arrival_s = completion_s + self.spec.latency_s;
        let teacher_label = self.state.cloud.label(true_class, attributes.difficulty());
        let sample = LabeledSample { features, teacher_label, true_class, timestamp_s };
        self.state.last_shipped = Some(ShippedMark { at_s: timestamp_s, attributes: *attributes });
        self.state.in_flight.push(InFlightLabel { sample: sample.clone(), arrival_s });
        self.state.window_bytes += self.frame_bytes;
        self.state.bytes_shipped += self.frame_bytes;
        self.state.frames_shipped += 1;
        self.state.labels_cloud += 1;
        self.state.cloud_latencies_s.push(arrival_s - timestamp_s);
        Some(sample)
    }

    /// Drains every in-flight label whose arrival time has passed, in
    /// arrival order.
    pub(crate) fn deliver_matured(&mut self, now_s: f64) -> Vec<LabeledSample> {
        if self.state.in_flight.iter().all(|l| l.arrival_s > now_s) {
            return Vec::new();
        }
        let mut matured: Vec<InFlightLabel> = Vec::new();
        let mut waiting = Vec::with_capacity(self.state.in_flight.len());
        for label in self.state.in_flight.drain(..) {
            if label.arrival_s <= now_s {
                matured.push(label);
            } else {
                waiting.push(label);
            }
        }
        self.state.in_flight = waiting;
        matured.sort_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s));
        matured.into_iter().map(|l| l.sample).collect()
    }

    /// Opens a new exchange window on the given route, resetting the
    /// per-window byte meter.
    pub(crate) fn begin_window(&mut self, route: LabelRoute) {
        self.state.route = route;
        self.state.window_bytes = 0;
    }

    /// Drops every in-flight label (the buffer-reset drift response: stale
    /// pre-drift labels must not arrive into a freshly cleared buffer).
    pub(crate) fn discard_in_flight(&mut self) {
        self.state.in_flight.clear();
    }

    /// Records `n` locally-labeled samples for the local/cloud split.
    pub(crate) fn note_local_labels(&mut self, n: usize) {
        self.state.labels_local += n as u64;
    }

    /// This camera's contribution to the cluster's [`EdgeMetrics`].
    pub(crate) fn accum(&self) -> EdgeAccum {
        EdgeAccum {
            bytes_shipped: self.state.bytes_shipped,
            frames_shipped: self.state.frames_shipped,
            frames_filtered: self.state.frames_filtered,
            labels_local: self.state.labels_local,
            labels_cloud: self.state.labels_cloud,
            latencies_s: self.state.cloud_latencies_s.clone(),
        }
    }
}

/// Fraction of attribute dimensions two segments agree on, equally weighted
/// over label distribution, time of day, location, and weather.
fn attribute_similarity(a: &SegmentAttributes, b: &SegmentAttributes) -> f64 {
    let mut matches = 0u32;
    matches += u32::from(a.labels == b.labels);
    matches += u32::from(a.time == b.time);
    matches += u32::from(a.location == b.location);
    matches += u32::from(a.weather == b.weather);
    f64::from(matches) / 4.0
}

// --------------------------------------------------------------------------
// Metrics
// --------------------------------------------------------------------------

/// Telemetry of one cluster run's edge–cloud tier: what the fleet shipped,
/// filtered, and paid in label latency, and what accuracy each uplink byte
/// bought.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdgeMetrics {
    /// The offload policy the cluster ran under (`"local-only"` when the
    /// edge tier was disabled).
    pub policy: String,
    /// Samples labeled by local teachers on edge-configured cameras.
    pub labels_local: u64,
    /// Samples labeled by the cloud tier.
    pub labels_cloud: u64,
    /// Frames shipped over uplinks across the fleet.
    pub frames_shipped: u64,
    /// Frames the near-duplicate filters dropped before the uplink.
    pub frames_filtered: u64,
    /// Total uplink bytes shipped across the fleet.
    pub bytes_shipped: u64,
    /// Median uplink-induced label delay (transfer + latency), in seconds.
    pub cloud_label_latency_p50_s: f64,
    /// 99th-percentile uplink-induced label delay, in seconds.
    pub cloud_label_latency_p99_s: f64,
    /// Fleet mean accuracy divided by the bytes that bought it (`0` when
    /// nothing shipped) — the headline the edge–cloud bench sweeps.
    pub accuracy_per_byte: f64,
}

impl EdgeMetrics {
    /// Aggregates per-camera accumulators into the cluster-level metrics.
    #[must_use]
    pub(crate) fn from_accum(policy: String, accum: &EdgeAccum, mean_accuracy: f64) -> Self {
        Self {
            policy,
            labels_local: accum.labels_local,
            labels_cloud: accum.labels_cloud,
            frames_shipped: accum.frames_shipped,
            frames_filtered: accum.frames_filtered,
            bytes_shipped: accum.bytes_shipped,
            cloud_label_latency_p50_s: crate::metrics::percentile(&accum.latencies_s, 50.0),
            cloud_label_latency_p99_s: crate::metrics::percentile(&accum.latencies_s, 99.0),
            accuracy_per_byte: if accum.bytes_shipped > 0 {
                mean_accuracy / accum.bytes_shipped as f64
            } else {
                0.0
            },
        }
    }
}

/// Edge-tier counters summed over cameras while a cluster runs.
#[derive(Debug, Clone, Default)]
pub(crate) struct EdgeAccum {
    pub(crate) bytes_shipped: u64,
    pub(crate) frames_shipped: u64,
    pub(crate) frames_filtered: u64,
    pub(crate) labels_local: u64,
    pub(crate) labels_cloud: u64,
    pub(crate) latencies_s: Vec<f64>,
}

impl EdgeAccum {
    /// Folds another camera's counters into this accumulator.
    pub(crate) fn merge(&mut self, other: &EdgeAccum) {
        self.bytes_shipped += other.bytes_shipped;
        self.frames_shipped += other.frames_shipped;
        self.frames_filtered += other.frames_filtered;
        self.labels_local += other.labels_local;
        self.labels_cloud += other.labels_cloud;
        self.latencies_s.extend_from_slice(&other.latencies_s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn context(resident_cameras: usize) -> OffloadContext<'static> {
        OffloadContext {
            window_index: 0,
            boundary_s: 60.0,
            camera: "cam-0",
            camera_index: 0,
            accelerator: 0,
            resident_cameras,
            buffer_len: 128,
            bytes_shipped: 0,
            window_bytes: 0,
        }
    }

    #[test]
    fn local_only_and_cloud_only_route_unconditionally() {
        let mut local = create_offload("local-only").unwrap();
        let mut cloud = create_offload("cloud-only").unwrap();
        for residents in [1, 4, 64] {
            assert_eq!(local.route(&context(residents)), LabelRoute::Local);
            assert_eq!(cloud.route(&context(residents)), LabelRoute::Cloud { byte_budget: None });
        }
        assert_eq!(local.name(), "local-only");
        assert_eq!(cloud.name(), "cloud-only");
        assert!(create_offload("local-only:1").is_err(), "local-only takes no parameters");
        assert!(create_offload("cloud-only:x").is_err(), "cloud-only takes no parameters");
    }

    #[test]
    fn threshold_gates_on_accelerator_residency() {
        let mut policy = create_offload("threshold:2").unwrap();
        assert_eq!(policy.route(&context(1)), LabelRoute::Local);
        assert_eq!(policy.route(&context(2)), LabelRoute::Local, "threshold is exclusive");
        assert_eq!(policy.route(&context(3)), LabelRoute::Cloud { byte_budget: None });
        assert_eq!(policy.name(), "threshold:2");
        assert!(create_offload("threshold").is_err(), "the depth parameter is required");
        assert!(create_offload("threshold:fast").is_err());
    }

    #[test]
    fn budget_routes_cloud_with_a_byte_cap() {
        let mut policy = create_offload("budget:5000000").unwrap();
        assert_eq!(policy.route(&context(1)), LabelRoute::Cloud { byte_budget: Some(5_000_000) });
        assert_eq!(policy.name(), "budget:5000000");
        assert!(create_offload("budget").is_err(), "the byte parameter is required");
        assert!(create_offload("budget:0").is_err(), "a zero budget is a misconfiguration");
        assert!(create_offload("budget:-3").is_err());
        assert!(create_offload("budget: 1000 ").is_ok(), "whitespace around the count is fine");
    }

    #[test]
    fn stateless_policies_reject_foreign_state() {
        let mut policy = create_offload("cloud-only").unwrap();
        assert_eq!(policy.state(), Value::Null);
        assert!(policy.restore_state(&Value::Null).is_ok());
        assert!(policy.restore_state(&Value::UInt(3)).is_err());
    }

    #[test]
    fn offload_registry_resolves_case_insensitively_and_lists_builtins() {
        assert!(offload_by_name("CLOUD-ONLY").is_some());
        assert!(offload_by_name("Budget:123").is_some());
        assert!(offload_by_name("no-such-policy").is_none());
        let names = registered_offload_policies();
        for builtin in ["local-only", "cloud-only", "threshold", "budget"] {
            assert!(names.contains(&builtin.to_string()), "{builtin} missing from {names:?}");
        }
        let err = match create_offload("no-such-policy") {
            Err(err) => err,
            Ok(_) => panic!("unknown policy must not resolve"),
        };
        assert!(err.to_string().contains("no-such-policy"), "{err}");
        assert!(err.to_string().contains("registered policies"), "{err}");
    }

    #[test]
    fn local_only_detection_ignores_case_but_not_other_names() {
        assert!(is_local_only("local-only"));
        assert!(is_local_only("LOCAL-ONLY"));
        assert!(!is_local_only("cloud-only"));
        assert!(!is_local_only("local-only-ish"));
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn registering_over_the_reserved_local_only_policy_panics() {
        struct Impostor;
        impl OffloadPolicyFactory for Impostor {
            fn name(&self) -> &str {
                "local-only"
            }
            fn build(&self, _params: Option<&str>) -> Result<Box<dyn OffloadPolicy>> {
                Ok(Box::new(CloudOnly))
            }
        }
        register_offload(Arc::new(Impostor));
    }

    #[test]
    fn external_offload_policies_plug_in_through_the_registry() {
        /// Offload only even-indexed windows.
        struct Alternating;
        impl OffloadPolicy for Alternating {
            fn name(&self) -> String {
                "alternating".to_string()
            }
            fn route(&mut self, ctx: &OffloadContext<'_>) -> LabelRoute {
                if ctx.window_index.is_multiple_of(2) {
                    LabelRoute::Cloud { byte_budget: None }
                } else {
                    LabelRoute::Local
                }
            }
        }
        struct AlternatingFactory;
        impl OffloadPolicyFactory for AlternatingFactory {
            fn name(&self) -> &str {
                "alternating"
            }
            fn build(&self, _params: Option<&str>) -> Result<Box<dyn OffloadPolicy>> {
                Ok(Box::new(Alternating))
            }
        }
        register_offload(Arc::new(AlternatingFactory));
        let mut policy = create_offload("alternating").unwrap();
        assert_eq!(policy.route(&context(1)), LabelRoute::Cloud { byte_budget: None });
        assert!(registered_offload_policies().contains(&"alternating".to_string()));
    }

    #[test]
    fn builtin_uplink_profiles_resolve_with_and_without_params() {
        let lte = create_uplink("lte").unwrap();
        assert_eq!(lte.bandwidth_bps(), 12.0e6);
        assert_eq!(lte.latency_s(), 0.06);
        assert_eq!(lte.frame_overhead_bytes(), DEFAULT_FRAME_OVERHEAD_BYTES);
        let fast_wifi = create_uplink("wifi:100,15").unwrap();
        assert_eq!(fast_wifi.bandwidth_bps(), 100.0e6);
        assert_eq!(fast_wifi.latency_s(), 0.015);
        let slower = create_uplink("degraded:0.1").unwrap();
        assert_eq!(slower.bandwidth_bps(), 0.1e6);
        assert_eq!(slower.latency_s(), 0.2, "latency keeps the profile default");
        for profile in ["broadband", "wifi", "lte", "degraded"] {
            assert!(uplink_by_name(profile).is_some(), "{profile} missing");
        }
    }

    #[test]
    fn uplink_profiles_reject_malformed_params() {
        assert!(create_uplink("lte:fast").is_err());
        assert!(create_uplink("lte:12,slow").is_err());
        assert!(create_uplink("lte:0").is_err(), "zero bandwidth is invalid");
        assert!(create_uplink("lte:-5").is_err());
        assert!(create_uplink("wifi:54,-1").is_err(), "negative latency is invalid");
        assert!(create_uplink("lte: 20 , 30 ").is_ok(), "whitespace is fine");
        let err = match create_uplink("carrier-pigeon") {
            Err(err) => err,
            Ok(_) => panic!("unknown profile must not resolve"),
        };
        assert!(err.to_string().contains("carrier-pigeon"), "{err}");
        assert!(err.to_string().contains("registered profiles"), "{err}");
    }

    #[test]
    fn external_uplink_providers_plug_in_through_the_registry() {
        struct Starlink;
        impl UplinkProvider for Starlink {
            fn name(&self) -> &str {
                "starlink"
            }
            fn build(&self, _params: Option<&str>) -> Result<UplinkSpec> {
                UplinkSpec::new(220.0e6, 0.04, 60_000)
            }
        }
        register_uplink(Arc::new(Starlink));
        assert_eq!(create_uplink("starlink").unwrap().bandwidth_bps(), 220.0e6);
        assert!(registered_uplinks().contains(&"starlink".to_string()));
    }

    #[test]
    fn uplink_spec_accounts_bytes_and_transfer_time() {
        let spec = UplinkSpec::new(8.0e6, 0.05, 1000).unwrap();
        assert_eq!(spec.frame_bytes(16), 1064);
        // 1000 bytes at 8 Mbit/s = 1 ms.
        assert!((spec.transfer_s(1000) - 0.001).abs() < 1e-12);
        assert!(UplinkSpec::new(f64::NAN, 0.0, 0).is_err());
        assert!(UplinkSpec::new(1.0, f64::INFINITY, 0).is_err());
    }

    #[test]
    fn edge_config_validates_its_ranges_and_uplink() {
        assert!(EdgeConfig::new("lte").validate().is_ok());
        assert!(EdgeConfig::new("lte:20,30").validate().is_ok());
        assert!(EdgeConfig::new("no-such-uplink").validate().is_err());
        assert!(EdgeConfig::new("lte").filter_threshold(1.5).validate().is_err());
        assert!(EdgeConfig::new("lte").filter_threshold(f64::NAN).validate().is_err());
        assert!(EdgeConfig::new("lte").cloud_accuracy(-0.1).validate().is_err());
    }

    fn tier(filter_threshold: f64) -> EdgeTier {
        EdgeTier::new(&EdgeConfig::new("lte").filter_threshold(filter_threshold), 10, 16, 7)
            .unwrap()
    }

    #[test]
    fn offer_ships_labels_and_queues_them_in_flight() {
        let mut tier = tier(1.0);
        let attrs = SegmentAttributes::default();
        let shipped = tier.offer(vec![0.0; 16], 3, 1.0, &attrs).expect("first frame ships");
        assert!(shipped.teacher_label < 10);
        assert_eq!(tier.state.frames_shipped, 1);
        assert_eq!(tier.state.labels_cloud, 1);
        assert_eq!(tier.state.in_flight.len(), 1);
        assert!(tier.state.bytes_shipped > 0);
        let arrival = tier.state.in_flight[0].arrival_s;
        assert!(arrival > 1.0, "transfer and latency delay the label");
        // Not matured yet…
        assert!(tier.deliver_matured(arrival - 1e-6).is_empty());
        // …then delivered exactly once.
        let delivered = tier.deliver_matured(arrival);
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].true_class, 3);
        assert!(tier.state.in_flight.is_empty());
        assert!(tier.deliver_matured(arrival + 1.0).is_empty());
    }

    #[test]
    fn filter_drops_near_duplicates_until_the_horizon_decays() {
        let mut tier = tier(0.5);
        let attrs = SegmentAttributes::default();
        assert!(tier.offer(vec![0.0; 16], 0, 0.0, &attrs).is_some(), "the anchor frame ships");
        // Identical attributes a blink later: similarity ~1, filtered.
        assert!(tier.offer(vec![0.0; 16], 0, 0.1, &attrs).is_none());
        assert_eq!(tier.state.frames_filtered, 1);
        // Past half the horizon the decayed similarity crosses below 0.5.
        assert!(tier.offer(vec![0.0; 16], 0, 1.5, &attrs).is_some());
        // A frame whose attributes changed ships even when fresh.
        let night = SegmentAttributes {
            time: dacapo_datagen::TimeOfDay::Night,
            weather: dacapo_datagen::Weather::Rainy,
            ..attrs
        };
        assert!(tier.offer(vec![0.0; 16], 0, 1.6, &night).is_some());
    }

    #[test]
    fn a_zero_threshold_filters_everything_within_the_horizon() {
        let mut tier = tier(0.0);
        let attrs = SegmentAttributes::default();
        assert!(tier.offer(vec![0.0; 16], 0, 0.0, &attrs).is_some());
        assert!(tier.offer(vec![0.0; 16], 0, 1.0, &attrs).is_none());
        assert!(tier.offer(vec![0.0; 16], 0, 1.9, &attrs).is_none());
        // At the horizon the decayed similarity reaches 0 == threshold, so
        // the frame is still filtered; just past it, a refresher ships.
        assert!(tier.offer(vec![0.0; 16], 0, FILTER_HORIZON_S + 1e-6, &attrs).is_none());
        assert_eq!(tier.state.frames_filtered, 3);
    }

    #[test]
    fn budgeted_routes_downgrade_to_local_once_spent() {
        let mut tier = tier(1.0);
        let budget = tier.frame_bytes * 2;
        tier.begin_window(LabelRoute::Cloud { byte_budget: Some(budget) });
        assert_eq!(tier.phase_route(), LabelRoute::Cloud { byte_budget: Some(budget) });
        let attrs = SegmentAttributes::default();
        tier.offer(vec![0.0; 16], 0, 0.0, &attrs).unwrap();
        assert!(matches!(tier.phase_route(), LabelRoute::Cloud { .. }), "one frame under budget");
        tier.offer(vec![0.0; 16], 0, 0.5, &attrs).unwrap();
        assert_eq!(tier.phase_route(), LabelRoute::Local, "budget spent");
        // A new window resets the meter.
        tier.begin_window(LabelRoute::Cloud { byte_budget: Some(budget) });
        assert!(matches!(tier.phase_route(), LabelRoute::Cloud { .. }));
    }

    #[test]
    fn the_uplink_serialises_transfers() {
        let mut tier = tier(1.0);
        let attrs = SegmentAttributes::default();
        // Two frames offered back-to-back: the second waits for the first
        // transfer to complete before starting its own, so consecutive
        // arrivals are exactly one transfer time apart.
        tier.offer(vec![0.0; 16], 0, 0.0, &attrs).unwrap();
        tier.offer(vec![0.0; 16], 0, 0.001, &attrs).unwrap();
        let first = tier.state.in_flight[0].arrival_s;
        let second = tier.state.in_flight[1].arrival_s;
        let transfer = tier.spec.transfer_s(tier.frame_bytes);
        assert!(transfer > 0.001, "the test frame outlasts the capture gap");
        assert!((second - first - transfer).abs() < 1e-9);
        assert_eq!(tier.state.cloud_latencies_s.len(), 2);
        assert!(tier.state.cloud_latencies_s[1] > tier.state.cloud_latencies_s[0]);
    }

    #[test]
    fn edge_tier_state_survives_serde_round_trips() {
        let mut tier = tier(0.8);
        tier.begin_window(LabelRoute::Cloud { byte_budget: Some(1 << 20) });
        let attrs = SegmentAttributes::default();
        tier.offer(vec![0.5; 16], 2, 0.0, &attrs).unwrap();
        tier.note_local_labels(5);
        let state = tier.state.clone();
        let restored = EdgeTierState::from_value(&state.to_value()).expect("round-trips");
        assert_eq!(restored, state);
    }

    #[test]
    fn metrics_aggregate_accumulators() {
        let mut accum = EdgeAccum {
            bytes_shipped: 1000,
            frames_shipped: 4,
            frames_filtered: 6,
            labels_local: 10,
            labels_cloud: 4,
            latencies_s: vec![0.1, 0.2, 0.3, 0.4],
        };
        accum.merge(&EdgeAccum {
            bytes_shipped: 500,
            frames_shipped: 2,
            frames_filtered: 1,
            labels_local: 3,
            labels_cloud: 2,
            latencies_s: vec![0.5, 0.6],
        });
        let metrics = EdgeMetrics::from_accum("cloud-only".to_string(), &accum, 0.75);
        assert_eq!(metrics.bytes_shipped, 1500);
        assert_eq!(metrics.frames_shipped, 6);
        assert_eq!(metrics.frames_filtered, 7);
        assert_eq!(metrics.labels_local, 13);
        assert_eq!(metrics.labels_cloud, 6);
        assert!((metrics.accuracy_per_byte - 0.75 / 1500.0).abs() < 1e-15);
        assert!(metrics.cloud_label_latency_p50_s > 0.0);
        assert!(metrics.cloud_label_latency_p99_s >= metrics.cloud_label_latency_p50_s);
        // A run whose edge tier never engaged reports all zeros.
        let disabled =
            EdgeMetrics::from_accum("local-only".to_string(), &EdgeAccum::default(), 0.9);
        assert_eq!(disabled.policy, "local-only");
        assert_eq!(disabled.bytes_shipped, 0);
        assert_eq!(disabled.accuracy_per_byte, 0.0, "no bytes shipped buys no accuracy");
        // The metrics struct round-trips like the other telemetry structs.
        let restored = EdgeMetrics::from_value(&metrics.to_value()).expect("round-trips");
        assert_eq!(restored, metrics);
    }
}
