//! Execution platforms: the DaCapo accelerator and GPU baselines reduced to
//! the kernel rates the continuous-learning simulator needs.

use crate::Result;
use dacapo_accel::estimator::{estimate, spatial_allocation, PrecisionPlan};
use dacapo_accel::gpu::GpuDevice;
use dacapo_accel::power::PowerModel;
use dacapo_accel::{AccelConfig, DaCapoAccelerator};
use dacapo_dnn::workload::{unit_costs, Kernel};
use dacapo_dnn::zoo::ModelPair;
use dacapo_dnn::QuantMode;
use dacapo_mx::MxPrecision;
use serde::{Deserialize, Serialize};

/// Predefined execution platforms, matching the hardware column of the
/// paper's baseline matrix (Section VII-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlatformKind {
    /// The DaCapo accelerator, spatially partitioned by the offline allocator.
    DaCapo,
    /// Jetson Orin at the default 60 W power mode.
    OrinHigh,
    /// Jetson Orin constrained to 30 W.
    OrinLow,
    /// RTX 3090 (used by the Figure 2 motivation study).
    Rtx3090,
}

impl PlatformKind {
    /// All platform kinds.
    pub const ALL: [PlatformKind; 4] = [
        PlatformKind::DaCapo,
        PlatformKind::OrinHigh,
        PlatformKind::OrinLow,
        PlatformKind::Rtx3090,
    ];
}

/// Kernel execution rates of a platform, plus how the kernels share it.
///
/// For the DaCapo accelerator, inference runs on the B-SA in isolation
/// (`shared == false`) while labeling and retraining time-share the T-SA at
/// the stated rates. For a GPU, all three kernels time-share one device
/// (`shared == true`): the simulator first charges inference its share of
/// each second and scales the other kernels' rates by what is left.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformRates {
    /// Human-readable platform name (appears in result tables).
    pub name: String,
    /// Maximum student-inference frame rate the inference resources sustain.
    pub inference_fps_capacity: f64,
    /// Teacher labeling throughput in samples/second when labeling runs.
    pub labeling_sps: f64,
    /// Student retraining throughput in samples/second when retraining runs.
    pub retraining_sps: f64,
    /// Whether the three kernels share one device (GPU) rather than running
    /// on dedicated sub-accelerators (DaCapo).
    pub shared: bool,
    /// Board/chip power in watts while busy.
    pub power_watts: f64,
    /// Arithmetic mode of the student's inference passes.
    pub inference_quant: QuantMode,
    /// Arithmetic mode of the student's retraining passes.
    pub training_quant: QuantMode,
    /// Rows assigned to the T-SA (DaCapo only; zero for GPUs).
    pub tsa_rows: usize,
    /// Rows assigned to the B-SA (DaCapo only; zero for GPUs).
    pub bsa_rows: usize,
}

impl PlatformRates {
    /// Derives the rates for a predefined platform, model pair, and frame
    /// rate. For [`PlatformKind::DaCapo`] this runs the offline spatial
    /// allocator on `accel`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::Accel`] if the accelerator configuration is
    /// invalid or cannot sustain the frame rate.
    pub fn for_kind(
        kind: PlatformKind,
        pair: ModelPair,
        fps: f64,
        accel: &AccelConfig,
    ) -> Result<Self> {
        match kind {
            PlatformKind::DaCapo => Self::dacapo(pair, fps, accel),
            PlatformKind::OrinHigh => Ok(Self::gpu(GpuDevice::jetson_orin_high(), pair)),
            PlatformKind::OrinLow => Ok(Self::gpu(GpuDevice::jetson_orin_low(), pair)),
            PlatformKind::Rtx3090 => Ok(Self::gpu(GpuDevice::rtx_3090(), pair)),
        }
    }

    /// Rates of a DaCapo accelerator partitioned by the offline spatial
    /// allocator (minimum B-SA rows that sustain `fps`).
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::Accel`] if the configuration is invalid or
    /// no partition sustains the frame rate.
    pub fn dacapo(pair: ModelPair, fps: f64, accel: &AccelConfig) -> Result<Self> {
        let accelerator = DaCapoAccelerator::new(*accel)?;
        let plan = PrecisionPlan::default();
        let tsa_rows = spatial_allocation(&accelerator, pair, fps, &plan)?;
        Self::dacapo_with_tsa_rows(pair, tsa_rows, accel)
    }

    /// Rates of a DaCapo accelerator with an explicit T-SA row count (used by
    /// ablations that bypass the spatial allocator).
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::Accel`] for invalid configurations or
    /// degenerate partitions.
    pub fn dacapo_with_tsa_rows(
        pair: ModelPair,
        tsa_rows: usize,
        accel: &AccelConfig,
    ) -> Result<Self> {
        let accelerator = DaCapoAccelerator::new(*accel)?;
        let plan = PrecisionPlan::default();
        let est = estimate(&accelerator, pair, tsa_rows, 16, &plan)?;
        let power = PowerModel::for_config(accel);
        Ok(Self {
            name: format!("DaCapo ({}x{} DPEs)", accel.rows, accel.cols),
            inference_fps_capacity: est.inference_fps,
            labeling_sps: est.labeling_samples_per_s,
            retraining_sps: est.retraining_samples_per_s,
            shared: false,
            power_watts: power.total_power_w(),
            inference_quant: QuantMode::Mx(plan.inference),
            training_quant: QuantMode::Mx(plan.retraining),
            tsa_rows: est.tsa_rows,
            bsa_rows: est.bsa_rows,
        })
    }

    /// Rates of a GPU baseline running all three kernels in FP32 on one
    /// time-shared device.
    #[must_use]
    pub fn gpu(device: GpuDevice, pair: ModelPair) -> Self {
        let costs = unit_costs(pair);
        Self {
            name: device.name.clone(),
            inference_fps_capacity: device
                .units_per_second(Kernel::Inference, costs.inference_per_frame),
            labeling_sps: device.units_per_second(Kernel::Labeling, costs.labeling_per_sample),
            retraining_sps: device
                .units_per_second(Kernel::Retraining, costs.retraining_per_sample),
            shared: true,
            power_watts: device.power_w,
            inference_quant: QuantMode::Fp32,
            training_quant: QuantMode::Fp32,
            tsa_rows: 0,
            bsa_rows: 0,
        }
    }

    /// Fraction of a shared device consumed by inference at the given frame
    /// rate (zero for DaCapo, whose B-SA is dedicated to inference).
    #[must_use]
    pub fn inference_share(&self, fps: f64) -> f64 {
        if !self.shared || self.inference_fps_capacity <= 0.0 {
            return 0.0;
        }
        (fps / self.inference_fps_capacity).min(1.0)
    }

    /// Fraction of streamed frames dropped because inference cannot keep up.
    #[must_use]
    pub fn frame_drop_rate(&self, fps: f64) -> f64 {
        if self.inference_fps_capacity >= fps {
            0.0
        } else {
            1.0 - self.inference_fps_capacity / fps
        }
    }

    /// Effective labeling rate after inference has taken its share of a
    /// shared device.
    #[must_use]
    pub fn effective_labeling_sps(&self, fps: f64) -> f64 {
        self.labeling_sps * (1.0 - self.inference_share(fps))
    }

    /// Effective retraining rate after inference has taken its share of a
    /// shared device.
    #[must_use]
    pub fn effective_retraining_sps(&self, fps: f64) -> f64 {
        self.retraining_sps * (1.0 - self.inference_share(fps))
    }

    /// Energy in joules for `seconds` of operation.
    #[must_use]
    pub fn energy_joules(&self, seconds: f64) -> f64 {
        self.power_watts * seconds
    }

    /// The MX precision the platform uses for inference, if any.
    #[must_use]
    pub fn inference_precision(&self) -> Option<MxPrecision> {
        match self.inference_quant {
            QuantMode::Mx(p) => Some(p),
            QuantMode::Fp32 => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dacapo_platform_sustains_30fps_for_every_pair() {
        let accel = AccelConfig::default();
        for pair in ModelPair::ALL {
            let rates = PlatformRates::dacapo(pair, 30.0, &accel).unwrap();
            assert!(rates.inference_fps_capacity >= 30.0, "{pair}");
            assert!(!rates.shared);
            assert_eq!(rates.tsa_rows + rates.bsa_rows, 16, "{pair}");
            assert!(rates.labeling_sps > 0.0 && rates.retraining_sps > 0.0);
            assert!((rates.power_watts - 0.236).abs() < 1e-9);
            assert_eq!(rates.frame_drop_rate(30.0), 0.0, "{pair}");
        }
    }

    #[test]
    fn gpu_platforms_are_shared_and_fp32() {
        let rates = PlatformRates::gpu(GpuDevice::jetson_orin_high(), ModelPair::ResNet18Wrn50);
        assert!(rates.shared);
        assert_eq!(rates.inference_quant, QuantMode::Fp32);
        assert_eq!(rates.power_watts, 60.0);
        assert_eq!(rates.tsa_rows, 0);
    }

    #[test]
    fn power_ratio_between_orin_and_dacapo_matches_paper() {
        let accel = AccelConfig::default();
        let dacapo = PlatformRates::dacapo(ModelPair::ResNet18Wrn50, 30.0, &accel).unwrap();
        let orin = PlatformRates::gpu(GpuDevice::jetson_orin_high(), ModelPair::ResNet18Wrn50);
        let ratio = orin.power_watts / dacapo.power_watts;
        assert!((ratio - 254.0).abs() < 2.0, "power ratio {ratio}");
    }

    #[test]
    fn inference_share_and_leftover_scale_gpu_rates() {
        let rates = PlatformRates::gpu(GpuDevice::jetson_orin_low(), ModelPair::ResNet34Wrn101);
        let share = rates.inference_share(30.0);
        assert!(share > 0.3, "heavy student should eat a large share, got {share}");
        assert!(rates.effective_labeling_sps(30.0) < rates.labeling_sps);
        assert!(rates.effective_retraining_sps(30.0) < rates.retraining_sps);
        // DaCapo never charges inference against T-SA work.
        let accel = AccelConfig::default();
        let dacapo = PlatformRates::dacapo(ModelPair::ResNet34Wrn101, 30.0, &accel).unwrap();
        assert_eq!(dacapo.inference_share(30.0), 0.0);
        assert_eq!(dacapo.effective_labeling_sps(30.0), dacapo.labeling_sps);
    }

    #[test]
    fn orin_low_has_less_leftover_than_orin_high() {
        let pair = ModelPair::ResNet34Wrn101;
        let high = PlatformRates::gpu(GpuDevice::jetson_orin_high(), pair);
        let low = PlatformRates::gpu(GpuDevice::jetson_orin_low(), pair);
        assert!(low.effective_retraining_sps(30.0) < high.effective_retraining_sps(30.0));
        assert!(low.effective_labeling_sps(30.0) < high.effective_labeling_sps(30.0));
    }

    #[test]
    fn frame_drops_appear_when_capacity_is_insufficient() {
        let rates = PlatformRates {
            name: "slow".into(),
            inference_fps_capacity: 15.0,
            labeling_sps: 1.0,
            retraining_sps: 1.0,
            shared: true,
            power_watts: 10.0,
            inference_quant: QuantMode::Fp32,
            training_quant: QuantMode::Fp32,
            tsa_rows: 0,
            bsa_rows: 0,
        };
        assert!((rates.frame_drop_rate(30.0) - 0.5).abs() < 1e-9);
        assert_eq!(rates.inference_share(30.0), 1.0);
        assert_eq!(rates.effective_retraining_sps(30.0), 0.0);
    }

    #[test]
    fn for_kind_covers_all_platforms() {
        let accel = AccelConfig::default();
        for kind in PlatformKind::ALL {
            let rates =
                PlatformRates::for_kind(kind, ModelPair::ResNet18Wrn50, 30.0, &accel).unwrap();
            assert!(!rates.name.is_empty());
            assert!(rates.power_watts > 0.0);
        }
    }

    #[test]
    fn energy_is_power_times_time() {
        let rates = PlatformRates::gpu(GpuDevice::rtx_3090(), ModelPair::ResNet18Wrn50);
        assert!((rates.energy_joules(10.0) - 3500.0).abs() < 1e-9);
    }
}
