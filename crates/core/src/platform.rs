//! Execution platforms behind the pluggable provider registry.
//!
//! The continuous-learning engine is platform-agnostic: it only ever consumes
//! a [`PlatformRates`] capability sheet — per-kernel [`KernelRate`]s
//! (throughput + arithmetic precision) for inference, labeling, and
//! retraining, a [`Sharing`] mode describing how the kernels contend for the
//! hardware, and a power draw. Where those capabilities come from is
//! open-ended, mirroring the scheduler registry in [`crate::sched`]:
//!
//! * The builtin [`PlatformKind`]s reproduce the paper's baseline matrix
//!   (the spatially-partitioned DaCapo accelerator, the Jetson Orin at its
//!   60 W and 30 W power modes, and the RTX 3090).
//! * External crates implement [`PlatformProvider`], [`register`] it, and
//!   select it by name via [`PlatformSpec::Named`] (the `SimConfig` builder
//!   accepts a `&str` platform directly) — no enum variant required.
//! * A provider name may carry a `:<params>` suffix that is forwarded to the
//!   provider, so a single provider describes a whole hardware family:
//!   `"scaled-dacapo:32"` builds a 32×32-DPE DaCapo chip, `"orin-dvfs:45"`
//!   a Jetson Orin pinned to a 45 W DVFS operating point.
//!
//! Builtin providers are pre-registered under their lower-cased display
//! names (`"dacapo"`, `"orin-high"`, `"orin-low"`, `"rtx-3090"`), plus the
//! two parameterised families `"orin-dvfs"` and `"scaled-dacapo"`.

use crate::registry::{split_params, ParamNames, Registry};
use crate::{CoreError, Result};
use dacapo_accel::estimator::{estimate, spatial_allocation, PrecisionPlan};
use dacapo_accel::gpu::{GpuDevice, UtilizationProfile};
use dacapo_accel::power::PowerModel;
use dacapo_accel::{AccelConfig, DaCapoAccelerator};
use dacapo_dnn::workload::{unit_costs, Kernel};
use dacapo_dnn::zoo::ModelPair;
use dacapo_dnn::QuantMode;
use dacapo_mx::MxPrecision;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;
use std::sync::{Arc, OnceLock};

/// Predefined execution platforms, matching the hardware column of the
/// paper's baseline matrix (Section VII-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlatformKind {
    /// The DaCapo accelerator, spatially partitioned by the offline allocator.
    DaCapo,
    /// Jetson Orin at the default 60 W power mode.
    OrinHigh,
    /// Jetson Orin constrained to 30 W.
    OrinLow,
    /// RTX 3090 (used by the Figure 2 motivation study).
    Rtx3090,
}

impl PlatformKind {
    /// All builtin platform kinds. This is the single source of truth the
    /// platform registry is seeded from.
    pub const ALL: [PlatformKind; 4] = [
        PlatformKind::DaCapo,
        PlatformKind::OrinHigh,
        PlatformKind::OrinLow,
        PlatformKind::Rtx3090,
    ];

    /// The canonical registry name: the lower-cased display name (e.g.
    /// `"orin-high"`), the same convention the scheduler registry uses.
    #[must_use]
    pub fn registry_name(self) -> String {
        self.to_string().to_lowercase()
    }
}

impl fmt::Display for PlatformKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformKind::DaCapo => write!(f, "DaCapo"),
            PlatformKind::OrinHigh => write!(f, "Orin-High"),
            PlatformKind::OrinLow => write!(f, "Orin-Low"),
            PlatformKind::Rtx3090 => write!(f, "RTX-3090"),
        }
    }
}

impl FromStr for PlatformKind {
    type Err = CoreError;

    /// Parses a builtin platform kind case-insensitively, with the same
    /// semantics as [`PlatformSpec::Named`] name matching (`"orin-high"`,
    /// `"Orin-High"`, and `"ORIN-HIGH"` all parse).
    fn from_str(s: &str) -> Result<Self> {
        let wanted = s.trim().to_lowercase();
        PlatformKind::ALL.into_iter().find(|kind| kind.registry_name() == wanted).ok_or_else(|| {
            CoreError::InvalidConfig {
                reason: format!(
                    "unknown builtin platform '{s}' (expected one of {})",
                    PlatformKind::ALL.map(|k| k.registry_name()).join(", ")
                ),
            }
        })
    }
}

/// Throughput and arithmetic-precision capability of one kernel on a
/// platform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelRate {
    /// Sustained throughput in kernel units per second: frames for
    /// inference, samples for labeling and retraining.
    pub units_per_s: f64,
    /// Arithmetic mode the kernel executes in.
    pub quant: QuantMode,
}

impl KernelRate {
    /// An FP32 kernel rate (the GPU baselines).
    #[must_use]
    pub fn fp32(units_per_s: f64) -> Self {
        Self { units_per_s, quant: QuantMode::Fp32 }
    }

    /// An MX block-floating-point kernel rate (DaCapo-style accelerators).
    #[must_use]
    pub fn mx(units_per_s: f64, precision: MxPrecision) -> Self {
        Self { units_per_s, quant: QuantMode::Mx(precision) }
    }

    fn validate(&self, kernel: &str) -> Result<()> {
        if !self.units_per_s.is_finite() || self.units_per_s < 0.0 {
            return Err(CoreError::InvalidConfig {
                reason: format!(
                    "{kernel} rate must be finite and non-negative, got {}",
                    self.units_per_s
                ),
            });
        }
        Ok(())
    }
}

/// How the three kernels contend for a platform's compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Sharing {
    /// Dedicated sub-accelerators: inference owns the B-SA while labeling
    /// and retraining time-share the T-SA (the DaCapo spatial partition).
    /// Inference never eats into labeling/retraining throughput.
    Partitioned {
        /// Rows assigned to the T-SA (labeling + retraining).
        tsa_rows: usize,
        /// Rows assigned to the B-SA (inference).
        bsa_rows: usize,
    },
    /// All three kernels time-share one device (the GPU baselines): the
    /// simulator first charges inference its share of each second and scales
    /// the other kernels' rates by what is left.
    TimeShared,
}

/// Kernel execution capabilities of a platform: what the continuous-learning
/// engine needs to know about the hardware, and nothing else.
///
/// Rates are constructed by [`PlatformProvider`]s (or the [`Self::new`]
/// constructor, which validates every capability) rather than by poking
/// public fields, so an engine never sees NaN throughputs, negative power,
/// or a zero-row spatial partition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformRates {
    name: String,
    inference: KernelRate,
    labeling: KernelRate,
    retraining: KernelRate,
    sharing: Sharing,
    power_watts: f64,
}

impl PlatformRates {
    /// Builds a validated capability sheet.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the name is empty, any kernel
    /// rate is negative or non-finite, the power draw is negative or
    /// non-finite, or a spatial partition has a zero-row sub-accelerator.
    pub fn new(
        name: impl Into<String>,
        inference: KernelRate,
        labeling: KernelRate,
        retraining: KernelRate,
        sharing: Sharing,
        power_watts: f64,
    ) -> Result<Self> {
        let rates =
            Self { name: name.into(), inference, labeling, retraining, sharing, power_watts };
        rates.validate()?;
        Ok(rates)
    }

    /// Re-checks the capability invariants [`Self::new`] enforces. Needed
    /// for sheets that did not pass through the constructor — deserialized
    /// [`PlatformSpec::Rates`] values — before the engine consumes them.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] under the same conditions as
    /// [`Self::new`].
    pub fn validate(&self) -> Result<()> {
        if self.name.trim().is_empty() {
            return Err(CoreError::InvalidConfig {
                reason: "platform name must not be empty".into(),
            });
        }
        self.inference.validate("inference")?;
        self.labeling.validate("labeling")?;
        self.retraining.validate("retraining")?;
        if !self.power_watts.is_finite() || self.power_watts < 0.0 {
            return Err(CoreError::InvalidConfig {
                reason: format!(
                    "platform '{}' power must be finite and non-negative, got {}",
                    self.name, self.power_watts
                ),
            });
        }
        if let Sharing::Partitioned { tsa_rows, bsa_rows } = self.sharing {
            if tsa_rows == 0 || bsa_rows == 0 {
                return Err(CoreError::InvalidConfig {
                    reason: format!(
                        "platform '{}' spatial partition needs rows in both \
                         sub-accelerators, got T-SA {tsa_rows} / B-SA {bsa_rows}",
                        self.name
                    ),
                });
            }
        }
        Ok(())
    }

    /// Derives the rates for a builtin platform, model pair, and frame rate.
    /// For [`PlatformKind::DaCapo`] this runs the offline spatial allocator
    /// on `accel`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for a non-finite or non-positive
    /// frame rate and [`CoreError::Accel`] if the accelerator configuration
    /// is invalid or cannot sustain the frame rate.
    pub fn for_kind(
        kind: PlatformKind,
        pair: ModelPair,
        fps: f64,
        accel: &AccelConfig,
    ) -> Result<Self> {
        validate_fps(fps)?;
        match kind {
            PlatformKind::DaCapo => Self::dacapo(pair, fps, accel),
            PlatformKind::OrinHigh => Self::gpu(GpuDevice::jetson_orin_high(), pair),
            PlatformKind::OrinLow => Self::gpu(GpuDevice::jetson_orin_low(), pair),
            PlatformKind::Rtx3090 => Self::gpu(GpuDevice::rtx_3090(), pair),
        }
    }

    /// Rates of a DaCapo accelerator partitioned by the offline spatial
    /// allocator (minimum B-SA rows that sustain `fps`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for a non-finite or non-positive
    /// frame rate and [`CoreError::Accel`] if the configuration is invalid
    /// or no partition sustains the frame rate.
    pub fn dacapo(pair: ModelPair, fps: f64, accel: &AccelConfig) -> Result<Self> {
        validate_fps(fps)?;
        let accelerator = DaCapoAccelerator::new(*accel)?;
        let plan = PrecisionPlan::default();
        let tsa_rows = spatial_allocation(&accelerator, pair, fps, &plan)?;
        Self::dacapo_with_tsa_rows(pair, tsa_rows, accel)
    }

    /// Rates of a DaCapo accelerator with an explicit T-SA row count (used by
    /// ablations that bypass the spatial allocator).
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::Accel`] for invalid configurations or
    /// degenerate partitions.
    pub fn dacapo_with_tsa_rows(
        pair: ModelPair,
        tsa_rows: usize,
        accel: &AccelConfig,
    ) -> Result<Self> {
        let accelerator = DaCapoAccelerator::new(*accel)?;
        let plan = PrecisionPlan::default();
        let est = estimate(&accelerator, pair, tsa_rows, 16, &plan)?;
        let power = PowerModel::for_config(accel);
        Self::new(
            format!("DaCapo ({}x{} DPEs)", accel.rows, accel.cols),
            KernelRate::mx(est.inference_fps, plan.inference),
            KernelRate::mx(est.labeling_samples_per_s, plan.labeling),
            KernelRate::mx(est.retraining_samples_per_s, plan.retraining),
            Sharing::Partitioned { tsa_rows: est.tsa_rows, bsa_rows: est.bsa_rows },
            power.total_power_w(),
        )
    }

    /// Rates of a GPU baseline running all three kernels in FP32 on one
    /// time-shared device.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the device's roofline yields
    /// non-finite kernel rates or a negative power draw.
    pub fn gpu(device: GpuDevice, pair: ModelPair) -> Result<Self> {
        let costs = unit_costs(pair);
        Self::new(
            device.name.clone(),
            KernelRate::fp32(device.units_per_second(Kernel::Inference, costs.inference_per_frame)),
            KernelRate::fp32(device.units_per_second(Kernel::Labeling, costs.labeling_per_sample)),
            KernelRate::fp32(
                device.units_per_second(Kernel::Retraining, costs.retraining_per_sample),
            ),
            Sharing::TimeShared,
            device.power_w,
        )
    }

    /// Human-readable platform name (appears in result tables).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The inference kernel's capability.
    #[must_use]
    pub fn inference(&self) -> KernelRate {
        self.inference
    }

    /// The labeling kernel's capability.
    #[must_use]
    pub fn labeling(&self) -> KernelRate {
        self.labeling
    }

    /// The retraining kernel's capability.
    #[must_use]
    pub fn retraining(&self) -> KernelRate {
        self.retraining
    }

    /// How the kernels contend for the platform's compute.
    #[must_use]
    pub fn sharing(&self) -> Sharing {
        self.sharing
    }

    /// Whether the three kernels time-share one device (GPU) rather than
    /// running on dedicated sub-accelerators (DaCapo).
    #[must_use]
    pub fn is_shared(&self) -> bool {
        self.sharing == Sharing::TimeShared
    }

    /// Board/chip power in watts while busy.
    #[must_use]
    pub fn power_watts(&self) -> f64 {
        self.power_watts
    }

    /// Maximum student-inference frame rate the inference resources sustain.
    #[must_use]
    pub fn inference_fps_capacity(&self) -> f64 {
        self.inference.units_per_s
    }

    /// Teacher labeling throughput in samples/second when labeling runs.
    #[must_use]
    pub fn labeling_sps(&self) -> f64 {
        self.labeling.units_per_s
    }

    /// Student retraining throughput in samples/second when retraining runs.
    #[must_use]
    pub fn retraining_sps(&self) -> f64 {
        self.retraining.units_per_s
    }

    /// Arithmetic mode of the student's inference passes.
    #[must_use]
    pub fn inference_quant(&self) -> QuantMode {
        self.inference.quant
    }

    /// Arithmetic mode of the student's retraining passes.
    #[must_use]
    pub fn training_quant(&self) -> QuantMode {
        self.retraining.quant
    }

    /// Rows assigned to the T-SA (zero for time-shared platforms).
    #[must_use]
    pub fn tsa_rows(&self) -> usize {
        match self.sharing {
            Sharing::Partitioned { tsa_rows, .. } => tsa_rows,
            Sharing::TimeShared => 0,
        }
    }

    /// Rows assigned to the B-SA (zero for time-shared platforms).
    #[must_use]
    pub fn bsa_rows(&self) -> usize {
        match self.sharing {
            Sharing::Partitioned { bsa_rows, .. } => bsa_rows,
            Sharing::TimeShared => 0,
        }
    }

    /// Fraction of a shared device consumed by inference at the given frame
    /// rate (zero for DaCapo, whose B-SA is dedicated to inference).
    #[must_use]
    pub fn inference_share(&self, fps: f64) -> f64 {
        if !self.is_shared() || self.inference.units_per_s <= 0.0 {
            return 0.0;
        }
        (fps / self.inference.units_per_s).min(1.0)
    }

    /// Fraction of streamed frames dropped because inference cannot keep up.
    #[must_use]
    pub fn frame_drop_rate(&self, fps: f64) -> f64 {
        if self.inference.units_per_s >= fps {
            0.0
        } else {
            1.0 - self.inference.units_per_s / fps
        }
    }

    /// Effective labeling rate after inference has taken its share of a
    /// shared device.
    #[must_use]
    pub fn effective_labeling_sps(&self, fps: f64) -> f64 {
        self.labeling.units_per_s * (1.0 - self.inference_share(fps))
    }

    /// Effective retraining rate after inference has taken its share of a
    /// shared device.
    #[must_use]
    pub fn effective_retraining_sps(&self, fps: f64) -> f64 {
        self.retraining.units_per_s * (1.0 - self.inference_share(fps))
    }

    /// Energy in joules for `seconds` of operation.
    #[must_use]
    pub fn energy_joules(&self, seconds: f64) -> f64 {
        self.power_watts * seconds
    }

    /// The MX precision the platform uses for inference, if any.
    #[must_use]
    pub fn inference_precision(&self) -> Option<MxPrecision> {
        match self.inference.quant {
            QuantMode::Mx(p) => Some(p),
            QuantMode::Fp32 => None,
        }
    }
}

/// Validates a stream frame rate before it reaches a provider.
fn validate_fps(fps: f64) -> Result<()> {
    if !fps.is_finite() || fps <= 0.0 {
        return Err(CoreError::InvalidConfig {
            reason: format!("stream frame rate must be finite and positive, got {fps}"),
        });
    }
    Ok(())
}

/// Everything a [`PlatformProvider`] gets to build a capability sheet from.
#[derive(Debug, Clone, Copy)]
pub struct PlatformRequest<'a> {
    /// The (student, teacher) model pair that will run on the platform.
    pub pair: ModelPair,
    /// Input stream frame rate the platform must serve (validated finite and
    /// positive before any provider sees it).
    pub fps: f64,
    /// Accelerator hardware configuration, honoured by DaCapo-family
    /// providers (others are free to ignore it).
    pub accel: &'a AccelConfig,
    /// Parameter suffix of the spec name, if any (`"scaled-dacapo:32"`
    /// resolves the `"scaled-dacapo"` provider with params `Some("32")`).
    pub params: Option<&'a str>,
}

/// Trait-object factory for execution platforms, the extension point of the
/// platform registry.
///
/// Implement this (plus [`register`] the instance) to plug externally-defined
/// hardware into the engine; [`PlatformSpec::Named`] then selects it by name
/// through `SimConfig::builder(..).platform("my-platform")`.
pub trait PlatformProvider: Send + Sync {
    /// The canonical (case-insensitive) base name the provider registers
    /// under, without any parameter suffix.
    fn name(&self) -> &str;

    /// Builds the capability sheet for one request.
    ///
    /// # Errors
    ///
    /// Providers must validate their inputs (including
    /// [`PlatformRequest::params`]) and return [`CoreError`] rather than
    /// panicking or producing non-finite rates.
    fn build(&self, request: &PlatformRequest<'_>) -> Result<PlatformRates>;

    /// The builtin kind this provider produces, if any. Custom providers
    /// keep the default `None`; [`PlatformSpec::kind`] relies on this to
    /// tell builtins apart from custom platforms registered over builtin
    /// names.
    fn kind(&self) -> Option<PlatformKind> {
        None
    }
}

/// Provider wrapping a builtin [`PlatformKind`].
struct KindProvider {
    kind: PlatformKind,
    name: String,
}

impl PlatformProvider for KindProvider {
    fn name(&self) -> &str {
        &self.name
    }

    fn build(&self, request: &PlatformRequest<'_>) -> Result<PlatformRates> {
        if let Some(params) = request.params {
            return Err(CoreError::InvalidConfig {
                reason: format!("platform '{}' takes no parameters, got ':{params}'", self.name),
            });
        }
        PlatformRates::for_kind(self.kind, request.pair, request.fps, request.accel)
    }

    fn kind(&self) -> Option<PlatformKind> {
        Some(self.kind)
    }
}

/// The Jetson Orin's DVFS envelope, used by the `"orin-dvfs"` provider:
/// power targets between 15 W and the 60 W default. The curve is anchored
/// at the paper's two published operating points — 30 W at 624.8 MHz and
/// 60 W at 1.3 GHz — interpolated linearly between them and scaled
/// proportionally below the 30 W anchor.
const ORIN_DVFS_MIN_W: f64 = 15.0;
const ORIN_DVFS_LOW_W: f64 = 30.0;
const ORIN_DVFS_LOW_FREQUENCY_MHZ: f64 = 624.8;
const ORIN_DVFS_MAX_W: f64 = 60.0;
const ORIN_MAX_FREQUENCY_MHZ: f64 = 1300.0;
const ORIN_PEAK_FP32_TFLOPS: f64 = 5.32;

/// `"orin-dvfs:<watts>"`: a Jetson Orin pinned to an arbitrary DVFS power
/// target, interpolating the discrete 30 W / 60 W modes of the paper into a
/// continuous low-power curve (defaults to 45 W). At the anchors the curve
/// reproduces the stock `orin-low` / `orin-high` throughputs exactly.
struct OrinDvfsProvider;

impl PlatformProvider for OrinDvfsProvider {
    fn name(&self) -> &str {
        "orin-dvfs"
    }

    fn build(&self, request: &PlatformRequest<'_>) -> Result<PlatformRates> {
        let watts = match request.params {
            None => 45.0,
            Some(raw) => raw.trim().parse::<f64>().map_err(|_| CoreError::InvalidConfig {
                reason: format!("orin-dvfs expects a power target in watts, got ':{raw}'"),
            })?,
        };
        if !watts.is_finite() || !(ORIN_DVFS_MIN_W..=ORIN_DVFS_MAX_W).contains(&watts) {
            return Err(CoreError::InvalidConfig {
                reason: format!(
                    "orin-dvfs power target must lie in [{ORIN_DVFS_MIN_W}, {ORIN_DVFS_MAX_W}] W, \
                     got {watts}"
                ),
            });
        }
        let frequency_mhz = if watts >= ORIN_DVFS_LOW_W {
            ORIN_DVFS_LOW_FREQUENCY_MHZ
                + (ORIN_MAX_FREQUENCY_MHZ - ORIN_DVFS_LOW_FREQUENCY_MHZ) * (watts - ORIN_DVFS_LOW_W)
                    / (ORIN_DVFS_MAX_W - ORIN_DVFS_LOW_W)
        } else {
            ORIN_DVFS_LOW_FREQUENCY_MHZ * watts / ORIN_DVFS_LOW_W
        };
        let device = GpuDevice {
            name: format!("Jetson Orin (DVFS {watts:.0}W)"),
            peak_fp32_tflops: ORIN_PEAK_FP32_TFLOPS * frequency_mhz / ORIN_MAX_FREQUENCY_MHZ,
            memory_bandwidth_gbps: 204.8,
            power_w: watts,
            frequency_mhz,
            utilization: UtilizationProfile::default(),
        };
        PlatformRates::gpu(device, request.pair)
    }
}

/// `"scaled-dacapo:<rows>"`: a DaCapo accelerator scaled to `rows`×`rows`
/// DPEs (defaults to the paper's 32×32 scale-up). [`PlatformRequest::accel`]
/// is the scaling base: its frequency and DRAM bandwidth carry over
/// unchanged and its SRAM scales proportionally with the DPE count, so
/// `.accelerator(..)` overrides compose with the row parameter.
struct ScaledDaCapoProvider;

impl PlatformProvider for ScaledDaCapoProvider {
    fn name(&self) -> &str {
        "scaled-dacapo"
    }

    fn build(&self, request: &PlatformRequest<'_>) -> Result<PlatformRates> {
        let rows = match request.params {
            None => 32,
            Some(raw) => raw.trim().parse::<usize>().map_err(|_| CoreError::InvalidConfig {
                reason: format!("scaled-dacapo expects a DPE row count, got ':{raw}'"),
            })?,
        };
        if !(2..=256).contains(&rows) {
            return Err(CoreError::InvalidConfig {
                reason: format!("scaled-dacapo needs between 2 and 256 DPE rows, got {rows}"),
            });
        }
        let base = *request.accel;
        let accel = AccelConfig {
            rows,
            cols: rows,
            sram_bytes: base.sram_bytes * (rows * rows) / (base.rows * base.cols).max(1),
            ..base
        };
        PlatformRates::dacapo(request.pair, request.fps, &accel)
    }
}

/// The global platform registry, seeded with the builtin kinds and the two
/// parameterised builtin families; storage and lookup rules live in
/// [`crate::registry`].
fn registry() -> &'static Registry<dyn PlatformProvider> {
    static REGISTRY: OnceLock<Registry<dyn PlatformProvider>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let mut seed: Vec<(String, Arc<dyn PlatformProvider>)> = PlatformKind::ALL
            .into_iter()
            .map(|kind| {
                let name = kind.registry_name();
                (name.clone(), Arc::new(KindProvider { kind, name }) as Arc<dyn PlatformProvider>)
            })
            .collect();
        let families: [Arc<dyn PlatformProvider>; 2] =
            [Arc::new(OrinDvfsProvider), Arc::new(ScaledDaCapoProvider)];
        seed.extend(families.into_iter().map(|p| (p.name().to_string(), p)));
        Registry::new("platform provider", ParamNames::Split, &[], seed)
    })
}

/// Registers (or replaces) a platform provider under its case-insensitive
/// [`PlatformProvider::name`].
///
/// # Panics
///
/// Panics if the provider's name contains `':'` — the colon introduces the
/// parameter suffix during lookup, so such a name could never be resolved.
pub fn register(provider: Arc<dyn PlatformProvider>) {
    let name = provider.name().to_string();
    registry().register(&name, provider);
}

/// Looks up a platform provider by case-insensitive name. A `:<params>`
/// suffix, if present, is ignored for the lookup (`by_name("scaled-dacapo:32")`
/// resolves the `"scaled-dacapo"` provider).
#[must_use]
pub fn by_name(name: &str) -> Option<Arc<dyn PlatformProvider>> {
    registry().by_name(name)
}

/// The base names of every registered platform, sorted.
#[must_use]
pub fn registered_names() -> Vec<String> {
    registry().names()
}

/// How a `SimConfig` selects its execution platform: a builtin kind, a
/// registered provider by name (with an optional `:<params>` suffix), or an
/// explicit capability sheet.
///
/// Equality is semantic, not structural: `Named("orin-high")`,
/// `Named("Orin-High")`, and `Kind(PlatformKind::OrinHigh)` all select the
/// same platform and compare equal — unless a custom provider has been
/// [`register`]ed over the builtin name, in which case the name resolves to
/// the custom platform.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum PlatformSpec {
    /// One of the paper's builtin platforms.
    Kind(PlatformKind),
    /// A platform resolved through the registry at session construction,
    /// optionally parameterised (`"scaled-dacapo:32"`).
    Named(String),
    /// Explicit, pre-built platform rates.
    Rates(PlatformRates),
}

impl PlatformSpec {
    /// Resolves the spec into a capability sheet for the given workload.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an invalid frame rate, an
    /// unregistered platform name, or invalid provider parameters, and
    /// propagates provider errors (e.g. an infeasible spatial allocation).
    pub fn resolve(&self, pair: ModelPair, fps: f64, accel: &AccelConfig) -> Result<PlatformRates> {
        validate_fps(fps)?;
        match self {
            PlatformSpec::Kind(kind) => PlatformRates::for_kind(*kind, pair, fps, accel),
            PlatformSpec::Named(name) => {
                let (base, params) = split_params(name);
                let provider = by_name(base).ok_or_else(|| CoreError::InvalidConfig {
                    reason: format!(
                        "unknown platform '{base}'; registered platforms: {}",
                        registered_names().join(", ")
                    ),
                })?;
                provider.build(&PlatformRequest { pair, fps, accel, params })
            }
            PlatformSpec::Rates(rates) => {
                // Explicit rates may come from deserialized configs that
                // never passed through `PlatformRates::new` — re-check the
                // invariants before the engine consumes them.
                rates.validate()?;
                Ok(rates.clone())
            }
        }
    }

    /// The builtin kind this spec selects, if any — including builtins
    /// selected by name (`Named("dacapo")` resolves to
    /// `Some(PlatformKind::DaCapo)`). Resolution goes through the registry,
    /// so a custom provider registered over a builtin name correctly reports
    /// `None`, and parameterised names are never builtin.
    #[must_use]
    pub fn kind(&self) -> Option<PlatformKind> {
        match self {
            PlatformSpec::Kind(kind) => Some(*kind),
            PlatformSpec::Named(name) => {
                let (base, params) = split_params(name);
                if params.is_some() {
                    return None;
                }
                by_name(base).and_then(|provider| provider.kind())
            }
            PlatformSpec::Rates(_) => None,
        }
    }
}

impl PartialEq for PlatformSpec {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (PlatformSpec::Rates(a), PlatformSpec::Rates(b)) => a == b,
            (PlatformSpec::Rates(_), _) | (_, PlatformSpec::Rates(_)) => false,
            _ => match (self.kind(), other.kind()) {
                (Some(a), Some(b)) => a == b,
                (None, None) => match (self, other) {
                    (PlatformSpec::Named(a), PlatformSpec::Named(b)) => {
                        a.to_lowercase() == b.to_lowercase()
                    }
                    // lint: allow(panic) — (None, None) with a non-Named
                    // variant is impossible: kind() covers every Kind variant
                    _ => unreachable!("kind() is Some for every Kind variant"),
                },
                _ => false,
            },
        }
    }
}

impl PartialEq<PlatformKind> for PlatformSpec {
    fn eq(&self, other: &PlatformKind) -> bool {
        self.kind() == Some(*other)
    }
}

impl From<PlatformKind> for PlatformSpec {
    fn from(kind: PlatformKind) -> Self {
        PlatformSpec::Kind(kind)
    }
}

impl From<&str> for PlatformSpec {
    fn from(name: &str) -> Self {
        PlatformSpec::Named(name.to_string())
    }
}

impl From<String> for PlatformSpec {
    fn from(name: String) -> Self {
        PlatformSpec::Named(name)
    }
}

impl From<PlatformRates> for PlatformSpec {
    fn from(rates: PlatformRates) -> Self {
        PlatformSpec::Rates(rates)
    }
}

impl fmt::Display for PlatformSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformSpec::Kind(kind) => write!(f, "{kind}"),
            PlatformSpec::Named(name) => write!(f, "{name}"),
            PlatformSpec::Rates(rates) => write!(f, "{}", rates.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dacapo_platform_sustains_30fps_for_every_pair() {
        let accel = AccelConfig::default();
        for pair in ModelPair::ALL {
            let rates = PlatformRates::dacapo(pair, 30.0, &accel).unwrap();
            assert!(rates.inference_fps_capacity() >= 30.0, "{pair}");
            assert!(!rates.is_shared());
            assert_eq!(rates.tsa_rows() + rates.bsa_rows(), 16, "{pair}");
            assert!(rates.labeling_sps() > 0.0 && rates.retraining_sps() > 0.0);
            assert!((rates.power_watts() - 0.236).abs() < 1e-9);
            assert_eq!(rates.frame_drop_rate(30.0), 0.0, "{pair}");
        }
    }

    #[test]
    fn gpu_platforms_are_shared_and_fp32() {
        let rates =
            PlatformRates::gpu(GpuDevice::jetson_orin_high(), ModelPair::ResNet18Wrn50).unwrap();
        assert!(rates.is_shared());
        assert_eq!(rates.inference_quant(), QuantMode::Fp32);
        assert_eq!(rates.training_quant(), QuantMode::Fp32);
        assert_eq!(rates.power_watts(), 60.0);
        assert_eq!(rates.tsa_rows(), 0);
        assert_eq!(rates.sharing(), Sharing::TimeShared);
    }

    #[test]
    fn power_ratio_between_orin_and_dacapo_matches_paper() {
        let accel = AccelConfig::default();
        let dacapo = PlatformRates::dacapo(ModelPair::ResNet18Wrn50, 30.0, &accel).unwrap();
        let orin =
            PlatformRates::gpu(GpuDevice::jetson_orin_high(), ModelPair::ResNet18Wrn50).unwrap();
        let ratio = orin.power_watts() / dacapo.power_watts();
        assert!((ratio - 254.0).abs() < 2.0, "power ratio {ratio}");
    }

    #[test]
    fn inference_share_and_leftover_scale_gpu_rates() {
        let rates =
            PlatformRates::gpu(GpuDevice::jetson_orin_low(), ModelPair::ResNet34Wrn101).unwrap();
        let share = rates.inference_share(30.0);
        assert!(share > 0.3, "heavy student should eat a large share, got {share}");
        assert!(rates.effective_labeling_sps(30.0) < rates.labeling_sps());
        assert!(rates.effective_retraining_sps(30.0) < rates.retraining_sps());
        // DaCapo never charges inference against T-SA work.
        let accel = AccelConfig::default();
        let dacapo = PlatformRates::dacapo(ModelPair::ResNet34Wrn101, 30.0, &accel).unwrap();
        assert_eq!(dacapo.inference_share(30.0), 0.0);
        assert_eq!(dacapo.effective_labeling_sps(30.0), dacapo.labeling_sps());
    }

    #[test]
    fn orin_low_has_less_leftover_than_orin_high() {
        let pair = ModelPair::ResNet34Wrn101;
        let high = PlatformRates::gpu(GpuDevice::jetson_orin_high(), pair).unwrap();
        let low = PlatformRates::gpu(GpuDevice::jetson_orin_low(), pair).unwrap();
        assert!(low.effective_retraining_sps(30.0) < high.effective_retraining_sps(30.0));
        assert!(low.effective_labeling_sps(30.0) < high.effective_labeling_sps(30.0));
    }

    #[test]
    fn frame_drops_appear_when_capacity_is_insufficient() {
        let rates = PlatformRates::new(
            "slow",
            KernelRate::fp32(15.0),
            KernelRate::fp32(1.0),
            KernelRate::fp32(1.0),
            Sharing::TimeShared,
            10.0,
        )
        .unwrap();
        assert!((rates.frame_drop_rate(30.0) - 0.5).abs() < 1e-9);
        assert_eq!(rates.inference_share(30.0), 1.0);
        assert_eq!(rates.effective_retraining_sps(30.0), 0.0);
    }

    #[test]
    fn for_kind_covers_all_platforms() {
        let accel = AccelConfig::default();
        for kind in PlatformKind::ALL {
            let rates =
                PlatformRates::for_kind(kind, ModelPair::ResNet18Wrn50, 30.0, &accel).unwrap();
            assert!(!rates.name().is_empty());
            assert!(rates.power_watts() > 0.0);
        }
    }

    #[test]
    fn energy_is_power_times_time() {
        let rates = PlatformRates::gpu(GpuDevice::rtx_3090(), ModelPair::ResNet18Wrn50).unwrap();
        assert!((rates.energy_joules(10.0) - 3500.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_capabilities_are_rejected_at_construction() {
        let good = KernelRate::fp32(10.0);
        let build = |inference: KernelRate, sharing: Sharing, power: f64| {
            PlatformRates::new("bad", inference, good, good, sharing, power)
        };
        assert!(build(KernelRate::fp32(f64::NAN), Sharing::TimeShared, 1.0).is_err());
        assert!(build(KernelRate::fp32(f64::INFINITY), Sharing::TimeShared, 1.0).is_err());
        assert!(build(KernelRate::fp32(-1.0), Sharing::TimeShared, 1.0).is_err());
        assert!(build(good, Sharing::TimeShared, f64::NAN).is_err());
        assert!(build(good, Sharing::TimeShared, -2.0).is_err());
        assert!(build(good, Sharing::Partitioned { tsa_rows: 0, bsa_rows: 4 }, 1.0).is_err());
        assert!(build(good, Sharing::Partitioned { tsa_rows: 4, bsa_rows: 0 }, 1.0).is_err());
        assert!(PlatformRates::new("", good, good, good, Sharing::TimeShared, 1.0).is_err());
        assert!(build(good, Sharing::Partitioned { tsa_rows: 8, bsa_rows: 8 }, 1.0).is_ok());
    }

    #[test]
    fn non_finite_frame_rates_error_for_every_builtin() {
        let accel = AccelConfig::default();
        for kind in PlatformKind::ALL {
            for fps in [f64::NAN, f64::INFINITY, 0.0, -30.0] {
                let result = PlatformRates::for_kind(kind, ModelPair::ResNet18Wrn50, fps, &accel);
                assert!(result.is_err(), "{kind} accepted fps {fps}");
            }
        }
    }

    #[test]
    fn kind_display_and_fromstr_round_trip() {
        for kind in PlatformKind::ALL {
            assert_eq!(kind.to_string().parse::<PlatformKind>().unwrap(), kind);
            assert_eq!(kind.registry_name().parse::<PlatformKind>().unwrap(), kind);
            assert_eq!(kind.registry_name().to_uppercase().parse::<PlatformKind>().unwrap(), kind);
        }
        assert_eq!("orin-high".parse::<PlatformKind>().unwrap(), PlatformKind::OrinHigh);
        assert_eq!("RTX-3090".parse::<PlatformKind>().unwrap(), PlatformKind::Rtx3090);
        let err = "not-a-platform".parse::<PlatformKind>().unwrap_err();
        assert!(err.to_string().contains("not-a-platform"), "{err}");
        assert!(err.to_string().contains("orin-low"), "{err}");
    }

    #[test]
    fn builtin_platforms_are_registered_by_display_name() {
        for kind in PlatformKind::ALL {
            let provider = by_name(&kind.to_string()).expect("builtin registered");
            assert_eq!(provider.kind(), Some(kind));
        }
        // Lookup is case-insensitive and ignores parameter suffixes.
        assert!(by_name("DACAPO").is_some());
        assert!(by_name("scaled-dacapo:32").is_some());
        assert!(by_name("no-such-platform").is_none());
        assert!(registered_names().len() >= 6);
        assert!(registered_names().contains(&"orin-dvfs".to_string()));
    }

    #[test]
    fn named_specs_resolve_bit_identically_to_kinds() {
        let accel = AccelConfig::default();
        for kind in PlatformKind::ALL {
            let by_kind =
                PlatformSpec::Kind(kind).resolve(ModelPair::ResNet18Wrn50, 30.0, &accel).unwrap();
            let by_name = PlatformSpec::Named(kind.registry_name())
                .resolve(ModelPair::ResNet18Wrn50, 30.0, &accel)
                .unwrap();
            assert_eq!(by_kind, by_name, "{kind}");
        }
    }

    #[test]
    fn builtin_providers_reject_parameter_suffixes() {
        let accel = AccelConfig::default();
        let err = PlatformSpec::Named("dacapo:16".into())
            .resolve(ModelPair::ResNet18Wrn50, 30.0, &accel)
            .unwrap_err();
        assert!(err.to_string().contains("takes no parameters"), "{err}");
    }

    #[test]
    fn orin_dvfs_interpolates_the_power_curve() {
        let accel = AccelConfig::default();
        let resolve = |name: &str| {
            PlatformSpec::Named(name.into()).resolve(ModelPair::ResNet18Wrn50, 30.0, &accel)
        };
        let full = resolve("orin-dvfs:60").unwrap();
        let high = resolve("orin-high").unwrap();
        // At the published anchors the DVFS curve reproduces the stock
        // Orin-High / Orin-Low throughputs exactly.
        assert_eq!(full.inference_fps_capacity(), high.inference_fps_capacity());
        assert_eq!(full.power_watts(), high.power_watts());
        let anchor_low = resolve("orin-dvfs:30").unwrap();
        let orin_low = resolve("orin-low").unwrap();
        assert_eq!(anchor_low.inference_fps_capacity(), orin_low.inference_fps_capacity());
        assert_eq!(anchor_low.labeling_sps(), orin_low.labeling_sps());
        assert_eq!(anchor_low.retraining_sps(), orin_low.retraining_sps());
        assert_eq!(anchor_low.power_watts(), orin_low.power_watts());
        let mid = resolve("orin-dvfs:45").unwrap();
        let default = resolve("orin-dvfs").unwrap();
        assert_eq!(mid, default, "the parameterless default is 45 W");
        let low = resolve("orin-dvfs:20").unwrap();
        assert!(low.power_watts() < mid.power_watts());
        assert!(low.inference_fps_capacity() < mid.inference_fps_capacity());
        assert!(mid.inference_fps_capacity() < full.inference_fps_capacity());
        // Out-of-envelope or malformed targets are rejected, not clamped.
        assert!(resolve("orin-dvfs:5").is_err());
        assert!(resolve("orin-dvfs:120").is_err());
        assert!(resolve("orin-dvfs:warp").is_err());
        assert!(resolve("orin-dvfs:NaN").is_err());
    }

    #[test]
    fn scaled_dacapo_grows_the_array() {
        let accel = AccelConfig::default();
        let resolve = |name: &str| {
            PlatformSpec::Named(name.into()).resolve(ModelPair::ResNet18Wrn50, 30.0, &accel)
        };
        let stock = resolve("dacapo").unwrap();
        let scaled = resolve("scaled-dacapo:32").unwrap();
        assert_eq!(scaled, resolve("scaled-dacapo").unwrap(), "default is the 32x32 scale-up");
        assert_eq!(scaled.tsa_rows() + scaled.bsa_rows(), 32);
        assert!(scaled.retraining_sps() > stock.retraining_sps());
        assert!(scaled.power_watts() > stock.power_watts());
        assert!(scaled.name().contains("32x32"), "{}", scaled.name());
        // Scaling to the stock row count reproduces the stock chip.
        assert_eq!(resolve("scaled-dacapo:16").unwrap(), stock);
        // The request's accel config is the scaling base, so `.accelerator`
        // overrides (here a doubled clock) carry through the row parameter.
        let fast = AccelConfig { frequency_hz: 1e9, ..AccelConfig::default() };
        let fast_rates = PlatformSpec::Named("scaled-dacapo:32".into())
            .resolve(ModelPair::ResNet18Wrn50, 30.0, &fast)
            .unwrap();
        assert!(fast_rates.retraining_sps() > scaled.retraining_sps());
        // Zero or degenerate row counts are validation errors.
        assert!(resolve("scaled-dacapo:0").is_err());
        assert!(resolve("scaled-dacapo:1").is_err());
        assert!(resolve("scaled-dacapo:many").is_err());
    }

    #[test]
    fn deserialized_rates_specs_are_validated_at_resolution() {
        // Simulates a hand-edited or deserialized config whose rates never
        // passed through `PlatformRates::new`: the struct literal is only
        // reachable inside this crate, like serde's derived Deserialize.
        let bogus = PlatformRates {
            name: "bogus".into(),
            inference: KernelRate::fp32(f64::NAN),
            labeling: KernelRate::fp32(1.0),
            retraining: KernelRate::fp32(1.0),
            sharing: Sharing::TimeShared,
            power_watts: 1.0,
        };
        let err = PlatformSpec::Rates(bogus)
            .resolve(ModelPair::ResNet18Wrn50, 30.0, &AccelConfig::default())
            .unwrap_err();
        assert!(err.to_string().contains("inference rate"), "{err}");
        let negative_power = PlatformRates {
            name: "bogus".into(),
            inference: KernelRate::fp32(60.0),
            labeling: KernelRate::fp32(1.0),
            retraining: KernelRate::fp32(1.0),
            sharing: Sharing::TimeShared,
            power_watts: -5.0,
        };
        assert!(negative_power.validate().is_err());
    }

    #[test]
    fn external_providers_plug_in_through_the_registry() {
        /// A platform no builtin enum variant knows about.
        struct Photonic;
        impl PlatformProvider for Photonic {
            fn name(&self) -> &str {
                "photonic"
            }
            fn build(&self, request: &PlatformRequest<'_>) -> Result<PlatformRates> {
                PlatformRates::new(
                    "Photonic Mesh",
                    KernelRate::fp32(8.0 * request.fps),
                    KernelRate::fp32(64.0),
                    KernelRate::fp32(256.0),
                    Sharing::TimeShared,
                    0.5,
                )
            }
        }

        register(Arc::new(Photonic));
        let spec = PlatformSpec::from("photonic");
        // Custom providers report no builtin kind, so name-selected custom
        // platforms never masquerade as builtins in kind-based branches.
        assert_eq!(spec.kind(), None);
        let rates = spec.resolve(ModelPair::ResNet18Wrn50, 30.0, &AccelConfig::default()).unwrap();
        assert_eq!(rates.name(), "Photonic Mesh");
        assert_eq!(rates.inference_fps_capacity(), 240.0);
        assert_eq!(rates.power_watts(), 0.5);
    }

    #[test]
    fn unknown_platform_names_fail_cleanly() {
        let spec = PlatformSpec::Named("does-not-exist".to_string());
        let err =
            spec.resolve(ModelPair::ResNet18Wrn50, 30.0, &AccelConfig::default()).unwrap_err();
        assert!(err.to_string().contains("does-not-exist"), "{err}");
        assert!(err.to_string().contains("registered platforms"), "{err}");
    }

    #[test]
    fn spec_equality_is_semantic_across_kind_and_name_forms() {
        assert_eq!(PlatformSpec::from("dacapo").kind(), Some(PlatformKind::DaCapo));
        assert_eq!(PlatformSpec::from("Orin-High"), PlatformKind::OrinHigh);
        assert_eq!(PlatformSpec::from("orin-high"), PlatformSpec::Kind(PlatformKind::OrinHigh));
        assert_ne!(PlatformSpec::from("orin-high"), PlatformSpec::Kind(PlatformKind::OrinLow));
        // Parameterised names are never builtin and compare by name.
        assert_eq!(PlatformSpec::from("scaled-dacapo:32").kind(), None);
        assert_eq!(PlatformSpec::from("Scaled-DaCapo:32"), PlatformSpec::from("scaled-dacapo:32"));
        assert_ne!(PlatformSpec::from("scaled-dacapo:32"), PlatformSpec::from("scaled-dacapo:64"));
        assert_ne!(
            PlatformSpec::from("scaled-dacapo:32"),
            PlatformSpec::Kind(PlatformKind::DaCapo)
        );
        // Explicit rates compare structurally, never against names or kinds.
        let rates = PlatformRates::new(
            "inline",
            KernelRate::fp32(60.0),
            KernelRate::fp32(10.0),
            KernelRate::fp32(10.0),
            Sharing::TimeShared,
            1.0,
        )
        .unwrap();
        assert_eq!(PlatformSpec::from(rates.clone()), PlatformSpec::Rates(rates.clone()));
        assert_ne!(PlatformSpec::from(rates), PlatformSpec::Kind(PlatformKind::DaCapo));
    }

    #[test]
    fn specs_display_like_their_selection() {
        assert_eq!(PlatformSpec::Kind(PlatformKind::OrinLow).to_string(), "Orin-Low");
        assert_eq!(PlatformSpec::from("scaled-dacapo:32").to_string(), "scaled-dacapo:32");
        let rates = PlatformRates::new(
            "Inline Rates",
            KernelRate::fp32(60.0),
            KernelRate::fp32(10.0),
            KernelRate::fp32(10.0),
            Sharing::TimeShared,
            1.0,
        )
        .unwrap();
        assert_eq!(PlatformSpec::Rates(rates).to_string(), "Inline Rates");
    }

    #[test]
    fn providers_see_the_requested_accelerator_config() {
        // The builtin DaCapo provider honours the accel config in the
        // request, so `.accelerator(..)` keeps working through the registry.
        let scaled = AccelConfig::scaled_32x32();
        let rates = PlatformSpec::Named("dacapo".into())
            .resolve(ModelPair::ResNet18Wrn50, 30.0, &scaled)
            .unwrap();
        assert_eq!(rates.tsa_rows() + rates.bsa_rows(), 32);
    }
}
