//! The shared machinery behind the workspace's pluggable-factory registries.
//!
//! Six subsystems in this crate expose the same extension pattern —
//! schedulers ([`crate::sched`]), platforms ([`crate::platform`]), arbiters
//! ([`crate::arbiter`]), share policies ([`crate::share`]), and the edge
//! tier's uplink profiles and offload policies ([`crate::edge`]): a global,
//! case-insensitive name → `Arc<dyn Factory>` map with `register` /
//! `by_name` / `registered_names` entry points, optional `:<params>` name
//! suffixes, and reserved-name protection. Each module keeps its public
//! functions (so the API is unchanged) and delegates the storage, lookup,
//! and name-validation rules here instead of carrying its own copy.
//!
//! The machinery is public so sibling crates can add registry families of
//! their own with the exact same semantics — `dacapo-telemetry`'s sink
//! registry (`chrome-trace`, `json-lines`, `summary`, reserved `null`) is
//! built on [`Registry`] this way.

use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

/// A global factory registry: lower-cased name → factory.
pub struct Registry<F: ?Sized> {
    /// What the registry holds, for panic messages (e.g. `"share policy"`).
    what: &'static str,
    /// Whether lookups strip a `:<params>` suffix before resolving (and
    /// `register` therefore rejects colon-bearing names as unreachable).
    params: ParamNames,
    /// Names [`Registry::register`] refuses to (re)claim.
    reserved: &'static [&'static str],
    factories: RwLock<BTreeMap<String, Arc<F>>>,
}

/// Whether a registry's names may carry `:<params>` suffixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamNames {
    /// Lookups strip a `:<suffix>`; registered names must not contain `':'`.
    Split,
    /// Names resolve verbatim (the scheduler registry's convention).
    Verbatim,
}

impl<F: ?Sized> Registry<F> {
    /// Creates a registry seeded with builtin factories. Seeding bypasses
    /// the reserved-name check — that is how reserved builtins get in.
    pub fn new(
        what: &'static str,
        params: ParamNames,
        reserved: &'static [&'static str],
        seed: Vec<(String, Arc<F>)>,
    ) -> Self {
        let mut factories = BTreeMap::new();
        for (name, factory) in seed {
            factories.insert(name.to_lowercase(), factory);
        }
        Self { what, params, reserved, factories: RwLock::new(factories) }
    }

    /// Registers (or replaces) a factory under the case-insensitive `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` contains `':'` in a [`ParamNames::Split`] registry
    /// (the colon introduces the parameter suffix during lookup, so such a
    /// name could never be resolved), or if `name` is reserved.
    pub fn register(&self, name: &str, factory: Arc<F>) {
        let key = name.to_lowercase();
        if self.params == ParamNames::Split {
            assert!(
                !key.contains(':'),
                "{} name '{key}' must not contain ':' (reserved for parameter suffixes)",
                self.what
            );
        }
        assert!(
            !self.reserved.contains(&key.as_str()),
            "{} name '{key}' is reserved for the builtin policy",
            self.what
        );
        self.lock_write().insert(key, factory);
    }

    /// Looks up a factory by case-insensitive name, stripping a `:<params>`
    /// suffix first in [`ParamNames::Split`] registries.
    pub fn by_name(&self, name: &str) -> Option<Arc<F>> {
        let base = match self.params {
            ParamNames::Split => split_params(name).0,
            ParamNames::Verbatim => name,
        };
        self.lock_read().get(&base.to_lowercase()).cloned()
    }

    /// The registered base names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.lock_read().keys().cloned().collect()
    }

    fn lock_read(&self) -> std::sync::RwLockReadGuard<'_, BTreeMap<String, Arc<F>>> {
        // lint: allow(panic) — a poisoned registry lock means a register()
        // call panicked mid-insert; no caller can make progress after that
        self.factories.read().unwrap_or_else(|_| panic!("{} registry poisoned", self.what))
    }

    fn lock_write(&self) -> std::sync::RwLockWriteGuard<'_, BTreeMap<String, Arc<F>>> {
        // lint: allow(panic) — same poisoning invariant as lock_read
        self.factories.write().unwrap_or_else(|_| panic!("{} registry poisoned", self.what))
    }
}

/// Splits a registry name into its base name and optional parameter suffix
/// (`"correlated:0.7"` → `("correlated", Some("0.7"))`).
pub fn split_params(name: &str) -> (&str, Option<&str>) {
    match name.split_once(':') {
        Some((base, params)) => (base, Some(params)),
        None => (name, None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    trait Named: Send + Sync {
        fn id(&self) -> u32;
    }
    struct N(u32);
    impl Named for N {
        fn id(&self) -> u32 {
            self.0
        }
    }

    fn registry() -> Registry<dyn Named> {
        Registry::new(
            "test factory",
            ParamNames::Split,
            &["builtin"],
            vec![("Builtin".to_string(), Arc::new(N(0)) as Arc<dyn Named>)],
        )
    }

    #[test]
    fn lookup_is_case_insensitive_and_param_stripping() {
        let registry = registry();
        registry.register("Custom", Arc::new(N(1)));
        assert_eq!(registry.by_name("custom").unwrap().id(), 1);
        assert_eq!(registry.by_name("CUSTOM:3,4").unwrap().id(), 1);
        assert_eq!(registry.by_name("builtin").unwrap().id(), 0);
        assert!(registry.by_name("missing").is_none());
        assert_eq!(registry.names(), vec!["builtin".to_string(), "custom".to_string()]);
    }

    #[test]
    fn verbatim_registries_resolve_colons_literally() {
        let registry: Registry<dyn Named> =
            Registry::new("verbatim factory", ParamNames::Verbatim, &[], Vec::new());
        registry.register("weird:name", Arc::new(N(7)));
        assert_eq!(registry.by_name("weird:name").unwrap().id(), 7);
        assert!(registry.by_name("weird").is_none());
    }

    #[test]
    #[should_panic(expected = "must not contain ':'")]
    fn split_registries_reject_colon_names() {
        registry().register("bad:name", Arc::new(N(2)));
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn reserved_names_cannot_be_reclaimed() {
        registry().register("builtin", Arc::new(N(3)));
    }

    #[test]
    fn split_params_splits_once() {
        assert_eq!(split_params("priority:3,1"), ("priority", Some("3,1")));
        assert_eq!(split_params("plain"), ("plain", None));
        assert_eq!(split_params("a:b:c"), ("a", Some("b:c")));
    }
}
