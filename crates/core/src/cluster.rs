//! Virtual-time cluster executor: thousands of camera sessions multiplexed
//! over a shared pool of accelerators under a pluggable arbitration policy.
//!
//! [`Fleet`](crate::Fleet) answers "what do N independent cameras do?";
//! [`Cluster`] answers the question the paper actually poses at scale: what
//! happens when those cameras **contend** for hardware. Each cluster owns
//! N [`Session`]s and M accelerator resources. Cameras are assigned to
//! accelerators round-robin at admission; each accelerator runs an
//! event-driven virtual-time loop that pops the next-due session step from a
//! binary-heap event queue, asks its [`Arbiter`](crate::arbiter::Arbiter)
//! for a capacity grant, and stretches the step's cluster-time duration by
//! the reciprocal of the granted share — the
//! [`Sharing::TimeShared`](crate::platform::Sharing) slowdown generalized
//! across cameras.
//!
//! Two invariants make the executor useful:
//!
//! * **Per-camera results are contention-free.** Arbitration stretches
//!   *cluster* time, never a session's own timeline, so every camera's
//!   [`SimResult`] stays bit-identical to a solo run; contention surfaces
//!   only in the [`ContentionMetrics`] (step stretch, makespan, accelerator
//!   utilization). A cluster with one dedicated accelerator per camera is
//!   therefore exactly a [`Fleet`](crate::Fleet) — and `Fleet::run` is
//!   implemented as precisely that (property-tested bit-identical).
//! * **Everything is deterministic.** Event-queue ties break by admission
//!   order, accelerators are independent of each other, and no wall-clock
//!   value feeds the virtual clock — two runs of the same cluster produce
//!   identical [`ClusterResult`]s regardless of thread count.
//!
//! Admission control bounds residency: [`Cluster::capacity_per_accelerator`]
//! caps concurrent sessions per accelerator, and cameras past the bound are
//! either rejected with a typed
//! [`CoreError::AdmissionRejected`] or queued
//! ([`AdmissionPolicy`]) until a resident on their accelerator finishes.
//!
//! # Cross-camera label sharing
//!
//! With a [`crate::share`] policy selected ([`Cluster::share`]), the
//! executor additionally divides cluster virtual time into fixed exchange
//! windows ([`Cluster::share_window_s`]). Every accelerator loop advances to
//! the window boundary (in parallel — accelerators stay independent inside a
//! window), then a single-threaded barrier exchanges freshly teacher-labeled
//! samples between cameras: each live session's exports are offered to every
//! peer in **camera admission-index order**, the policy grants an admit
//! fraction per (importer, exporter) pair, and admitted samples enter the
//! importer's [`SampleBuffer`](crate::SampleBuffer) without the importer
//! paying any teacher labeling time. The deterministic exchange order keeps
//! shared runs bit-identical across worker-thread counts. Sharing telemetry
//! lands in [`ClusterResult::share`]; the reserved `"none"` policy takes the
//! sharing-free fast path and reproduces pre-sharing cluster output exactly.
//!
//! # Edge–cloud offload
//!
//! With an offload policy selected ([`Cluster::offload`]), the same window
//! barriers additionally route each edge-configured camera's labeling for
//! the upcoming window: the local teacher, or the cloud tier behind the
//! camera's modeled uplink (see [`crate::edge`]). Decisions run
//! single-threaded in camera admission-index order, so routed runs stay
//! deterministic at any worker-thread count. A cloud-offloaded labeling
//! phase consumes no local accelerator compute — the executor exempts it
//! from arbitration exactly like a wait — and uplink telemetry aggregates
//! into [`ClusterResult::edge`]. The reserved `"local-only"` policy (the
//! default) keeps the executor on the exact pre-edge code path.
//!
//! # Barrier discipline
//!
//! The determinism invariant has a structural shape this module commits
//! to in source: within a window the per-accelerator loops (rooted at
//! `run_until`) run in parallel and touch only their own cameras; *all*
//! cross-camera shared state mutates in exactly four functions —
//! `exchange_window` (label share import/export), `apply_churn` (fleet
//! membership), `route_offload` (offload routing), and `sample_barrier`
//! (ordered observer sampling) — each annotated
//! `// lint: barrier-only(<reason>)` and called only from the
//! single-threaded window barrier in `run_windowed`. The workspace
//! linter's `barrier` rule (`crates/lint`) machine-checks this: a share
//! or churn call drifting into the parallel region fails CI before it
//! can fail a bit-identity proptest.

use crate::arbiter::{self, GrantRequest, PeerSession};
use crate::buffer::LabeledSample;
use crate::config::SimConfig;
use crate::edge::{self, EdgeAccum, EdgeMetrics, OffloadContext, OffloadPolicy};
use crate::fleet::{aggregate, prefix_camera, CameraResult, FleetResult};
use crate::metrics::{mean, percentile};
use crate::session::{
    AcceleratorSample, Session, SessionEvent, SimObserver, StagedRetrain, WindowSample,
};
use crate::share::{self, ShareContext, ShareMetrics, SharePolicy};
use crate::sim::{PhaseKind, SimResult};
use crate::{CoreError, Result};
use dacapo_dnn::{train_stacked, StackedJob, TrainScratch};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Default cross-camera exchange window in cluster virtual seconds (one
/// scenario segment at the paper's 60-second segmentation).
const DEFAULT_SHARE_WINDOW_S: f64 = 60.0;

/// One elastic-membership event on the cluster's virtual timeline. Events
/// are *scheduled* at `at_s` but *execute* at the first window barrier at or
/// after that time (see [`ChurnPlan`]), so churn stays deterministic across
/// worker-thread counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ChurnEvent {
    /// A camera joins the cluster mid-run: its session starts (admitted via
    /// the standard capacity/admission path onto the least-loaded surviving
    /// accelerator) at the barrier.
    Join {
        /// Virtual time at which the camera becomes available, in seconds.
        at_s: f64,
        /// The camera's unique name.
        camera: String,
        /// The camera's full configuration (boxed: a `SimConfig` dwarfs the
        /// other variants).
        config: Box<SimConfig>,
    },
    /// A camera leaves the cluster mid-run: its session stops at the
    /// barrier and its partial [`SimResult`] (covering the executed prefix)
    /// is reported. Leaving a camera that already finished is a no-op; a
    /// camera still waiting in an admission queue departs without a result.
    Leave {
        /// Virtual time of the departure, in seconds.
        at_s: f64,
        /// Name of the departing camera.
        camera: String,
    },
    /// An accelerator drains for maintenance: at the barrier, every resident
    /// session is snapshotted (through the public
    /// [`SessionSnapshot`](crate::SessionSnapshot) format) and restored onto
    /// a surviving accelerator via the standard admission path. With no
    /// survivor, residents are orphaned and report partial results.
    Drain {
        /// Virtual time of the drain, in seconds.
        at_s: f64,
        /// Index of the accelerator to drain.
        accelerator: usize,
    },
}

impl ChurnEvent {
    /// The event's scheduled virtual time, in seconds.
    #[must_use]
    pub fn at_s(&self) -> f64 {
        match self {
            ChurnEvent::Join { at_s, .. }
            | ChurnEvent::Leave { at_s, .. }
            | ChurnEvent::Drain { at_s, .. } => *at_s,
        }
    }
}

/// A schedule of elastic-membership events ([`ChurnEvent`]) for one cluster
/// run, built in fluent style and executed at the same deterministic window
/// barriers as cross-camera label sharing: an event at time `t` fires at the
/// first barrier `b = k · window_s` with `b >= t`; events quantised to the
/// same barrier apply in the order they were added to the plan.
///
/// # Examples
///
/// ```no_run
/// use dacapo_core::{ChurnPlan, Cluster, SimConfig};
/// use dacapo_datagen::Scenario;
/// use dacapo_dnn::zoo::ModelPair;
///
/// # fn main() -> Result<(), dacapo_core::CoreError> {
/// let late = SimConfig::builder(Scenario::s2(), ModelPair::ResNet18Wrn50).build()?;
/// let plan = ChurnPlan::new()
///     .join(300.0, "late-joiner", late)
///     .leave(600.0, "cam-0")
///     .drain(900.0, 1);
/// let mut cluster = Cluster::new(2).churn(plan);
/// # let config = SimConfig::builder(Scenario::s1(), ModelPair::ResNet18Wrn50).build()?;
/// cluster = cluster.camera("cam-0", config.clone()).camera("cam-1", config);
/// let result = cluster.run()?;
/// println!("{} migrations", result.churn.migrations);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ChurnPlan {
    events: Vec<ChurnEvent>,
}

impl ChurnPlan {
    /// Creates an empty plan (a cluster with an empty plan executes
    /// bit-identically to one without any plan).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules a camera join at virtual time `at_s`.
    #[must_use]
    pub fn join(mut self, at_s: f64, camera: impl Into<String>, config: SimConfig) -> Self {
        self.events.push(ChurnEvent::Join {
            at_s,
            camera: camera.into(),
            config: Box::new(config),
        });
        self
    }

    /// Schedules a camera departure at virtual time `at_s`.
    #[must_use]
    pub fn leave(mut self, at_s: f64, camera: impl Into<String>) -> Self {
        self.events.push(ChurnEvent::Leave { at_s, camera: camera.into() });
        self
    }

    /// Schedules an accelerator drain at virtual time `at_s`.
    #[must_use]
    pub fn drain(mut self, at_s: f64, accelerator: usize) -> Self {
        self.events.push(ChurnEvent::Drain { at_s, accelerator });
        self
    }

    /// Adds an already-built event.
    #[must_use]
    pub fn event(mut self, event: ChurnEvent) -> Self {
        self.events.push(event);
        self
    }

    /// The scheduled events, in the order they were added.
    #[must_use]
    pub fn events(&self) -> &[ChurnEvent] {
        &self.events
    }

    /// Number of scheduled events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Telemetry of one cluster run's elastic membership: what the churn plan
/// did to the fleet. Zeroed (except [`ChurnMetrics::peak_residency`]) when
/// the plan was empty.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ChurnMetrics {
    /// Cameras that joined mid-run.
    pub joins: usize,
    /// Camera departures applied.
    pub leaves: usize,
    /// Accelerator drains applied.
    pub drains: usize,
    /// Sessions snapshot-migrated off a draining accelerator onto a
    /// survivor (directly admitted or queued for resumption).
    pub migrations: usize,
    /// Total virtual seconds migrated sessions spent between their drain
    /// event's scheduled time and resuming on the target accelerator —
    /// barrier-quantisation delay plus any admission queueing.
    pub migration_stall_s: f64,
    /// Peak number of concurrently resident (live) sessions across the
    /// cluster, sampled at admission and at every window barrier.
    pub peak_residency: usize,
    /// Cameras stranded without a home: residents (or queued cameras) of a
    /// drained accelerator with no surviving accelerator, and joins denied
    /// under [`AdmissionPolicy::Reject`] at full capacity. Orphans that had
    /// already run report partial results; orphans that never started are
    /// absent from [`FleetResult::cameras`].
    pub orphaned_cameras: usize,
}

/// What happens to cameras assigned past an accelerator's capacity bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmissionPolicy {
    /// Refuse to run: [`Cluster::run`] fails with
    /// [`CoreError::AdmissionRejected`] naming the first camera over the
    /// bound.
    Reject,
    /// Queue: the camera waits (in admission order, per accelerator) and
    /// starts at the cluster time a resident session finishes.
    Queue,
}

/// Cluster-wide contention telemetry: how hard the accelerators were fought
/// over, independent of the per-camera accuracy results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContentionMetrics {
    /// Number of shared accelerators in the pool.
    pub accelerators: usize,
    /// The arbitration policy name the cluster ran under.
    pub arbiter: String,
    /// Cluster virtual time at which the last session finished, in seconds.
    pub makespan_s: f64,
    /// Total phases executed across every session (including waits).
    pub steps_executed: usize,
    /// Mean stretch over arbitrated (labeling/retraining) steps: cluster-time
    /// duration divided by session-time duration, `1.0` meaning no
    /// contention. `0` when no arbitrated step executed.
    pub mean_step_stretch: f64,
    /// Median arbitrated-step stretch (`0` when no arbitrated step ran).
    pub p50_step_stretch: f64,
    /// 99th-percentile arbitrated-step stretch (the contention tail).
    pub p99_step_stretch: f64,
    /// Worst single-step stretch.
    pub max_step_stretch: f64,
    /// Per-accelerator utilization: arbitrated session-seconds executed
    /// divided by that accelerator's local makespan (`0` for idle
    /// accelerators).
    pub accelerator_utilization: Vec<f64>,
    /// Mean of [`Self::accelerator_utilization`].
    pub mean_accelerator_utilization: f64,
    /// Sum over accelerators of each event loop's peak heap depth — the
    /// cluster's peak concurrent event footprint.
    pub peak_queue_depth: usize,
    /// Cameras that waited in an admission queue before starting.
    pub queued_cameras: usize,
}

/// The outcome of a cluster run: the same per-camera results and aggregates
/// a [`Fleet`](crate::Fleet) reports, plus the contention telemetry only a
/// shared-accelerator execution can produce.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterResult {
    /// Per-camera results and fleet-level aggregates, covering the initial
    /// cameras plus every mid-run join (in plan order after the initial
    /// set). With sharing disabled (the default `"none"` policy) camera
    /// results are bit-identical to solo runs — contention never changes a
    /// session's numbers, only its place on the cluster clock; a camera
    /// that left mid-run (or was orphaned by a drain) reports the partial
    /// result of its executed prefix. An active share policy feeds peers'
    /// labels into sessions' buffers, so camera results then legitimately
    /// differ from solo runs.
    pub fleet: FleetResult,
    /// Contention telemetry.
    pub contention: ContentionMetrics,
    /// Cross-camera label-sharing telemetry (zeroed under the `"none"`
    /// policy).
    pub share: ShareMetrics,
    /// Elastic-membership telemetry (zeroed, except peak residency, when
    /// the churn plan was empty).
    pub churn: ChurnMetrics,
    /// Edge–cloud offload telemetry: uplink bytes, filtered frames, and
    /// local-vs-cloud label counts aggregated across every camera (zeroed
    /// under the default `"local-only"` policy, or when no camera carries
    /// an edge tier).
    pub edge: EdgeMetrics,
}

impl ClusterResult {
    /// The camera result with the given name, if present.
    #[must_use]
    pub fn camera(&self, name: &str) -> Option<&SimResult> {
        self.fleet.camera(name)
    }
}

/// Builder-style driver for a cluster of camera sessions sharing a pool of
/// accelerators.
///
/// # Examples
///
/// ```no_run
/// use dacapo_core::{Cluster, SimConfig};
/// use dacapo_datagen::Scenario;
/// use dacapo_dnn::zoo::ModelPair;
///
/// # fn main() -> Result<(), dacapo_core::CoreError> {
/// // 1000 cameras contending for 4 accelerators under fair-share.
/// let mut cluster = Cluster::new(4).arbiter("fair-share");
/// for i in 0..1000 {
///     let scenario = Scenario::all()[i % 8].clone();
///     let config = SimConfig::builder(scenario, ModelPair::ResNet18Wrn50)
///         .seed(0xDACA90 + i as u64)
///         .build()?;
///     cluster = cluster.camera(format!("cam-{i:04}"), config);
/// }
/// let result = cluster.run()?;
/// println!(
///     "makespan {:.0} s, p99 stretch {:.1}x, mean accuracy {:.1}%",
///     result.contention.makespan_s,
///     result.contention.p99_step_stretch,
///     result.fleet.mean_accuracy * 100.0,
/// );
/// # Ok(())
/// # }
/// ```
pub struct Cluster {
    cameras: Vec<(String, SimConfig)>,
    accelerators: usize,
    threads: usize,
    arbiter: String,
    capacity: Option<usize>,
    admission: AdmissionPolicy,
    share: String,
    share_window_s: f64,
    churn: ChurnPlan,
    offload: String,
    batch: bool,
}

impl Cluster {
    /// Creates an empty cluster with `accelerators` shared accelerator
    /// resources, a `fair-share` arbiter, no admission bound, sharing
    /// disabled, and worker threads sized to the machine's available
    /// parallelism.
    #[must_use]
    pub fn new(accelerators: usize) -> Self {
        let threads = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
        Self {
            cameras: Vec::new(),
            accelerators,
            threads,
            arbiter: "fair-share".to_string(),
            capacity: None,
            admission: AdmissionPolicy::Queue,
            share: "none".to_string(),
            share_window_s: DEFAULT_SHARE_WINDOW_S,
            churn: ChurnPlan::new(),
            offload: "local-only".to_string(),
            batch: true,
        }
    }

    /// Adds a camera with its own configuration. Cameras are assigned to
    /// accelerators round-robin in the order they are added.
    #[must_use]
    pub fn camera(mut self, name: impl Into<String>, config: SimConfig) -> Self {
        self.cameras.push((name.into(), config));
        self
    }

    /// Selects the arbitration policy by registry name (see
    /// [`crate::arbiter::register`]), with an optional `:<params>` suffix —
    /// `"fair-share"`, `"priority:3,1"`, `"drift-first:4"`, or any custom
    /// registered policy.
    #[must_use]
    pub fn arbiter(mut self, name: impl Into<String>) -> Self {
        self.arbiter = name.into();
        self
    }

    /// Selects the cross-camera label-sharing policy by registry name (see
    /// [`crate::share::register`]), with an optional `:<params>` suffix —
    /// `"none"` (the default: sharing disabled), `"broadcast"`,
    /// `"correlated:0.7"`, or any custom registered policy.
    #[must_use]
    pub fn share(mut self, name: impl Into<String>) -> Self {
        self.share = name.into();
        self
    }

    /// Sets the cross-camera exchange window in cluster virtual seconds
    /// (default 60, one paper segment). Consulted when an active share
    /// policy is selected via [`Cluster::share`] or a non-empty
    /// [`ChurnPlan`] is installed via [`Cluster::churn`] — both execute at
    /// the same window barriers.
    #[must_use]
    pub fn share_window_s(mut self, window_s: f64) -> Self {
        self.share_window_s = window_s;
        self
    }

    /// Selects the edge–cloud offload policy by registry name (see
    /// [`crate::edge::register_offload`]), with an optional `:<params>`
    /// suffix — `"local-only"` (the default: every camera labels on its own
    /// accelerator), `"cloud-only"`, `"threshold:<queue-depth>"`,
    /// `"budget:<bytes-per-window>"`, or any custom registered policy.
    /// Routing decisions are taken at the deterministic window barriers of
    /// [`Cluster::share_window_s`]; every policy other than `"local-only"`
    /// requires at least one camera carrying an
    /// [`EdgeConfig`](crate::edge::EdgeConfig). Cameras without an edge
    /// tier always label locally.
    #[must_use]
    pub fn offload(mut self, name: impl Into<String>) -> Self {
        self.offload = name.into();
        self
    }

    /// Installs an elastic-membership plan: cameras joining and leaving
    /// mid-run and accelerators draining (their residents snapshot-migrate
    /// to the survivors). Events execute at the deterministic window
    /// barriers of [`Cluster::share_window_s`]; an empty plan (the default)
    /// keeps the executor on the exact churn-free code path.
    #[must_use]
    pub fn churn(mut self, plan: ChurnPlan) -> Self {
        self.churn = plan;
        self
    }

    /// Caps the number of worker threads (at least one is always used).
    /// Accelerators are independent, so threading never changes results.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Bounds the number of concurrently resident sessions per accelerator.
    /// Cameras past the bound are handled per the [`AdmissionPolicy`].
    #[must_use]
    pub fn capacity_per_accelerator(mut self, capacity: usize) -> Self {
        self.capacity = Some(capacity);
        self
    }

    /// Sets what happens to cameras past the capacity bound (default:
    /// [`AdmissionPolicy::Queue`]).
    #[must_use]
    pub fn admission(mut self, policy: AdmissionPolicy) -> Self {
        self.admission = policy;
        self
    }

    /// Toggles batched per-window retraining (default: on). When enabled,
    /// windowed executions pre-stage each window's first phase per resident
    /// at the window's start and dispatch the co-resident retraining phases
    /// as one stacked GEMM batch sharing a single scratch arena. Results are
    /// bit-identical either way (property-tested); the toggle exists for
    /// benchmarking the two paths against each other. The sharing-, churn-
    /// and offload-free fast path has no windows and is unaffected.
    #[must_use]
    pub fn batch_retraining(mut self, enabled: bool) -> Self {
        self.batch = enabled;
        self
    }

    /// Number of cameras currently in the cluster.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cameras.len()
    }

    /// Whether the cluster has no cameras.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cameras.is_empty()
    }

    /// Runs every camera session to completion, accelerator loops spread
    /// across the worker threads, and aggregates results plus contention
    /// and sharing metrics. Deterministic at any thread count.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an empty cluster, a zero
    /// accelerator/capacity bound, duplicate camera names, an invalid camera
    /// configuration, an unregistered arbiter or share policy, or a bad
    /// share window; [`CoreError::AdmissionRejected`] when the admission
    /// policy is [`AdmissionPolicy::Reject`] and a camera lands past the
    /// capacity bound; and propagates the first session error otherwise.
    pub fn run(self) -> Result<ClusterResult> {
        self.run_impl(None)
    }

    /// Like [`Cluster::run`], but forwards every session event (phases,
    /// drift responses, accuracy samples, finishes) of every camera to
    /// `observer` through the standard [`SimObserver`] hooks, each burst
    /// preceded by [`SimObserver::on_step_context`] naming its camera and
    /// accelerator. Observed runs always execute through the windowed path,
    /// so the stream is grouped by window (within each window, accelerators
    /// stream in index order, each in cluster-virtual-time order) and every
    /// boundary fires the window-barrier sampling hooks
    /// ([`SimObserver::on_window_barrier`] /
    /// [`SimObserver::on_window_sample`] /
    /// [`SimObserver::on_accelerator_sample`]) even when no share, churn, or
    /// offload policy is active. Execution is single-threaded so the
    /// observer needs no synchronisation and sees a bit-identical stream at
    /// any [`Cluster::threads`] setting. The returned result is identical
    /// to [`Cluster::run`]'s (property-tested).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Cluster::run`].
    pub fn run_with(self, observer: &mut dyn SimObserver) -> Result<ClusterResult> {
        self.run_impl(Some(observer))
    }

    fn run_impl(self, observer: Option<&mut dyn SimObserver>) -> Result<ClusterResult> {
        self.validate()?;
        let accelerators = self.accelerators;
        let arbiter_name = self.arbiter;
        let capacity = self.capacity;
        let admission = self.admission;
        let share_name = self.share;
        let offload_name = self.offload;
        let share_window_s = self.share_window_s;
        let threads = self.threads;
        let initial_cameras = self.cameras.len();
        let mut cameras = self.cameras;
        // Joined cameras extend the camera list (and therefore the results)
        // past the initial set; only the initial set is assigned up front.
        let churn_events = prepare_churn(&self.churn, &mut cameras);

        // Round-robin assignment, in admission order per accelerator.
        let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); accelerators];
        for index in 0..initial_cameras {
            assignment[index % accelerators].push(index);
        }
        let setup = ExecSetup {
            assignment: &assignment,
            cameras: &cameras,
            arbiter: &arbiter_name,
            capacity,
            admission,
            threads,
            batch: self.batch,
        };
        let (outcomes, share_metrics, churn_outcome) = if observer.is_none()
            && share::is_disabled(&share_name)
            && churn_events.is_empty()
            && edge::is_local_only(&offload_name)
        {
            // The churn-, sharing- and offload-free fast path: no windows,
            // no barriers, the exact pre-elasticity execution. Residency
            // only ever decreases here, so the peak is the initial one.
            let resident_cap = capacity.unwrap_or(usize::MAX);
            let peak_residency =
                assignment.iter().map(|assigned| assigned.len().min(resident_cap)).sum();
            let metrics = ChurnMetrics { peak_residency, ..ChurnMetrics::default() };
            (
                run_isolated(&setup, observer)?,
                ShareMetrics::disabled(share_window_s),
                ChurnOutcome { metrics, extra_results: Vec::new(), edge: EdgeAccum::default() },
            )
        } else {
            let policy =
                if share::is_disabled(&share_name) { None } else { Some(share_name.as_str()) };
            run_windowed(&setup, policy, &offload_name, share_window_s, &churn_events, observer)?
        };

        let mut results: Vec<Option<SimResult>> = (0..cameras.len()).map(|_| None).collect();
        let mut stretches = Vec::new();
        let mut utilization = Vec::with_capacity(accelerators);
        let mut steps_executed = 0;
        let mut peak_queue_depth = 0;
        let mut queued_cameras = 0;
        let mut makespan_s: f64 = 0.0;
        let mut churn_metrics = churn_outcome.metrics;
        let mut edge_accum = churn_outcome.edge;
        for outcome in outcomes {
            for (camera_index, result) in outcome.results {
                results[camera_index] = Some(result);
            }
            edge_accum.merge(&outcome.edge);
            stretches.extend(outcome.stretches);
            steps_executed += outcome.steps;
            peak_queue_depth += outcome.peak_depth;
            queued_cameras += outcome.queued;
            churn_metrics.migration_stall_s += outcome.stall_s;
            makespan_s = makespan_s.max(outcome.makespan_s);
            let local_utilization =
                if outcome.makespan_s > 0.0 { outcome.busy_s / outcome.makespan_s } else { 0.0 };
            utilization.push(local_utilization);
        }
        for (camera_index, result) in churn_outcome.extra_results {
            results[camera_index] = Some(result);
        }
        // Cameras without a result either left before starting or were
        // orphaned from an admission queue — there is nothing to report for
        // them, so they are absent from the fleet results.
        let camera_results: Vec<CameraResult> = cameras
            .into_iter()
            .zip(results)
            .filter_map(|((camera, _), result)| {
                result.map(|result| CameraResult { camera, result })
            })
            .collect();
        let contention = ContentionMetrics {
            accelerators,
            arbiter: arbiter_name,
            makespan_s,
            steps_executed,
            mean_step_stretch: mean(&stretches),
            p50_step_stretch: percentile(&stretches, 50.0),
            p99_step_stretch: percentile(&stretches, 99.0),
            max_step_stretch: stretches.iter().copied().fold(0.0, f64::max),
            mean_accelerator_utilization: mean(&utilization),
            accelerator_utilization: utilization,
            peak_queue_depth,
            queued_cameras,
        };
        let fleet = aggregate(camera_results);
        let edge = EdgeMetrics::from_accum(offload_name, &edge_accum, fleet.mean_accuracy);
        Ok(ClusterResult { fleet, contention, share: share_metrics, churn: churn_metrics, edge })
    }

    /// Full up-front validation so a bad camera or policy fails fast,
    /// before any session is constructed or simulated.
    fn validate(&self) -> Result<()> {
        if self.accelerators == 0 {
            return Err(CoreError::InvalidConfig {
                reason: "a cluster needs at least one accelerator".into(),
            });
        }
        if self.cameras.is_empty() {
            return Err(CoreError::InvalidConfig {
                reason: "a cluster needs at least one camera".into(),
            });
        }
        if self.capacity == Some(0) {
            return Err(CoreError::InvalidConfig {
                reason: "per-accelerator capacity must be at least one session".into(),
            });
        }
        if !(self.share_window_s.is_finite() && self.share_window_s > 0.0) {
            return Err(CoreError::InvalidConfig {
                reason: format!(
                    "cross-camera share window must be positive and finite, got {} s",
                    self.share_window_s
                ),
            });
        }
        for (i, (name, config)) in self.cameras.iter().enumerate() {
            if self.cameras[..i].iter().any(|(other, _)| other == name) {
                return Err(CoreError::InvalidConfig {
                    reason: format!("duplicate camera name '{name}'"),
                });
            }
            // Catch bad configs (including unregistered scheduler or
            // platform names) before any simulation time is spent, so the
            // error carries the offending camera's name. The resolutions
            // here are cheap; Session::new repeats them.
            config.validate().map_err(|e| prefix_camera(name, e))?;
            config.scheduler.create(&config.hyper).map_err(|e| prefix_camera(name, e))?;
            config.platform_rates().map_err(|e| prefix_camera(name, e))?;
        }
        // Resolve the arbiter and share policy once up front: an
        // unregistered policy or malformed parameters must not fail mid-run.
        arbiter::create(&self.arbiter)?;
        share::create(&self.share)?;
        edge::create_offload(&self.offload)?;
        if !edge::is_local_only(&self.offload) {
            let has_edge_camera = self.cameras.iter().any(|(_, config)| config.edge.is_some())
                || self.churn.events().iter().any(|event| {
                    matches!(event, ChurnEvent::Join { config, .. } if config.edge.is_some())
                });
            if !has_edge_camera {
                return Err(CoreError::InvalidConfig {
                    reason: format!(
                        "offload policy '{}' has nothing to route: no camera (initial or \
                         joining) carries an edge tier — attach one with \
                         SimConfig::builder(..).edge(..)",
                        self.offload
                    ),
                });
            }
        }
        self.validate_churn()?;
        if self.admission == AdmissionPolicy::Reject {
            if let Some(capacity) = self.capacity {
                let bound = self.accelerators * capacity;
                if self.cameras.len() > bound {
                    let (camera, _) = &self.cameras[bound];
                    return Err(CoreError::AdmissionRejected {
                        camera: camera.clone(),
                        reason: format!(
                            "cluster capacity is {capacity} sessions on each of {} accelerators \
                             ({bound} total) and the admission policy is Reject",
                            self.accelerators
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    /// Full up-front validation of the churn plan, so a malformed event
    /// fails the run before any simulation time is spent.
    fn validate_churn(&self) -> Result<()> {
        // First pass, in plan order: per-event shape checks (times, join
        // configs, name uniqueness).
        let mut known_names: Vec<&str> =
            self.cameras.iter().map(|(name, _)| name.as_str()).collect();
        for (index, event) in self.churn.events().iter().enumerate() {
            let at_s = event.at_s();
            if !(at_s.is_finite() && at_s >= 0.0) {
                return Err(CoreError::InvalidConfig {
                    reason: format!(
                        "churn event #{index} must be scheduled at a finite, non-negative \
                         virtual time, got {at_s} s"
                    ),
                });
            }
            // Window indices are computed in f64 and stored in usize; past
            // 2^53 windows both representations break down, so cap the
            // schedule well inside that range instead of hanging the run.
            if at_s / self.share_window_s >= 9.0e15 {
                return Err(CoreError::InvalidConfig {
                    reason: format!(
                        "churn event #{index} at {at_s} s is beyond the representable window \
                         range for a {} s window",
                        self.share_window_s
                    ),
                });
            }
            if let ChurnEvent::Join { camera, config, .. } = event {
                if known_names.contains(&camera.as_str()) {
                    return Err(CoreError::InvalidConfig {
                        reason: format!("churn join duplicates camera name '{camera}'"),
                    });
                }
                config.validate().map_err(|e| prefix_camera(camera, e))?;
                config.scheduler.create(&config.hyper).map_err(|e| prefix_camera(camera, e))?;
                config.platform_rates().map_err(|e| prefix_camera(camera, e))?;
                known_names.push(camera);
            }
        }
        // Second pass, in *execution* order (time, then plan order for
        // ties — exactly how the barriers will apply the events), so
        // ordering rules match what actually runs: a leave may be added to
        // the plan before the join it follows in time.
        let mut order: Vec<(f64, usize)> =
            self.churn.events().iter().enumerate().map(|(seq, e)| (e.at_s(), seq)).collect();
        order.sort_by(|(a, sa), (b, sb)| a.total_cmp(b).then(sa.cmp(sb)));
        let mut joined: Vec<&str> = self.cameras.iter().map(|(name, _)| name.as_str()).collect();
        let mut drained: Vec<usize> = Vec::new();
        for (at_s, seq) in order {
            match &self.churn.events()[seq] {
                ChurnEvent::Join { camera, .. } => joined.push(camera),
                ChurnEvent::Leave { camera, .. } => {
                    if !joined.contains(&camera.as_str()) {
                        if known_names.contains(&camera.as_str()) {
                            return Err(CoreError::InvalidConfig {
                                reason: format!(
                                    "camera '{camera}' cannot leave at {at_s} s before joining"
                                ),
                            });
                        }
                        return Err(CoreError::InvalidConfig {
                            reason: format!("churn leave names unknown camera '{camera}'"),
                        });
                    }
                }
                ChurnEvent::Drain { accelerator, .. } => {
                    if *accelerator >= self.accelerators {
                        return Err(CoreError::InvalidConfig {
                            reason: format!(
                                "churn drain names accelerator {accelerator}, but the cluster \
                                 has only {}",
                                self.accelerators
                            ),
                        });
                    }
                    if drained.contains(accelerator) {
                        return Err(CoreError::InvalidConfig {
                            reason: format!(
                                "accelerator {accelerator} is drained twice in the churn plan"
                            ),
                        });
                    }
                    drained.push(*accelerator);
                }
            }
        }
        Ok(())
    }
}

/// The shared, immutable inputs every accelerator loop runs against.
struct ExecSetup<'a> {
    assignment: &'a [Vec<usize>],
    cameras: &'a [(String, SimConfig)],
    arbiter: &'a str,
    capacity: Option<usize>,
    admission: AdmissionPolicy,
    threads: usize,
    /// Whether windowed runs batch co-resident retraining phases
    /// ([`Cluster::batch_retraining`]).
    batch: bool,
}

/// A churn event with its camera name resolved to a cluster camera index,
/// sorted into execution order.
struct PreparedEvent {
    at_s: f64,
    action: ChurnAction,
}

enum ChurnAction {
    Join { camera_index: usize },
    Leave { camera_index: usize },
    Drain { accelerator: usize },
}

/// Resolves a validated churn plan against the camera list: join configs
/// are appended to `cameras` (so joined cameras occupy indices past the
/// initial set), names become indices, and events are stably sorted by
/// scheduled time — same-time events keep plan order.
fn prepare_churn(plan: &ChurnPlan, cameras: &mut Vec<(String, SimConfig)>) -> Vec<PreparedEvent> {
    // Append every join's camera first (in plan order, fixing the result
    // indices), then resolve names: a leave may be added to the plan before
    // the join it follows in time.
    for event in plan.events() {
        if let ChurnEvent::Join { camera, config, .. } = event {
            cameras.push((camera.clone(), (**config).clone()));
        }
    }
    let mut prepared: Vec<(f64, usize, ChurnAction)> = Vec::with_capacity(plan.len());
    for (seq, event) in plan.events().iter().enumerate() {
        let resolve = |camera: &String| {
            cameras
                .iter()
                .position(|(name, _)| name == camera)
                // lint: allow(panic) — ChurnPlan::validate rejected unknown
                // camera names before this resolver can run
                .expect("validated churn plans only name known cameras")
        };
        let action = match event {
            ChurnEvent::Join { camera, .. } => ChurnAction::Join { camera_index: resolve(camera) },
            ChurnEvent::Leave { camera, .. } => {
                ChurnAction::Leave { camera_index: resolve(camera) }
            }
            ChurnEvent::Drain { accelerator, .. } => {
                ChurnAction::Drain { accelerator: *accelerator }
            }
        };
        prepared.push((event.at_s(), seq, action));
    }
    prepared.sort_by(|(a, sa, _), (b, sb, _)| a.total_cmp(b).then(sa.cmp(sb)));
    prepared.into_iter().map(|(at_s, _, action)| PreparedEvent { at_s, action }).collect()
}

/// What the window barriers' churn processing produced, alongside the
/// per-accelerator outcomes.
struct ChurnOutcome {
    metrics: ChurnMetrics,
    /// `(camera index, partial result)` of cameras that stopped at a churn
    /// barrier: mid-run leaves and orphaned residents.
    extra_results: Vec<(usize, SimResult)>,
    /// Edge-tier counters of sessions finalised at churn barriers without
    /// passing through an accelerator loop's own bookkeeping (orphans).
    edge: EdgeAccum,
}

/// A heap entry: when a session's next step is due on the cluster clock.
/// Orders by due time (IEEE total order), ties broken by admission sequence
/// so the executor is deterministic.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Due {
    at: f64,
    seq: u64,
    slot: usize,
}

impl Eq for Due {}

impl PartialOrd for Due {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Due {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.total_cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

/// A flat-array binary **min**-heap of [`Due`] entries over the contiguous
/// session slab, replacing `BinaryHeap<Reverse<Due>>` on the executor's hot
/// path: entries are `Copy` and live in one `Vec` that is pushed/popped in
/// place, so steady-state stepping performs no per-event allocation and the
/// `Reverse` wrapper disappears from every comparison. Ordering is exactly
/// [`Due`]'s `Ord` (due time under IEEE total order, ties by admission
/// sequence), so pop order — and therefore every cluster result — is
/// unchanged.
#[derive(Debug, Default)]
struct DueHeap {
    entries: Vec<Due>,
}

impl DueHeap {
    fn new() -> Self {
        Self { entries: Vec::new() }
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn clear(&mut self) {
        self.entries.clear();
    }

    /// The minimum entry (earliest due, lowest sequence) without removal.
    fn peek(&self) -> Option<Due> {
        self.entries.first().copied()
    }

    fn push(&mut self, due: Due) {
        self.entries.push(due);
        self.sift_up(self.entries.len() - 1);
    }

    /// Removes and returns the minimum entry.
    fn pop(&mut self) -> Option<Due> {
        if self.entries.is_empty() {
            return None;
        }
        let top = self.entries.swap_remove(0);
        if !self.entries.is_empty() {
            self.sift_down(0);
        }
        Some(top)
    }

    fn sift_up(&mut self, mut child: usize) {
        while child > 0 {
            let parent = (child - 1) / 2;
            if self.entries[child] >= self.entries[parent] {
                break;
            }
            self.entries.swap(child, parent);
            child = parent;
        }
    }

    fn sift_down(&mut self, mut parent: usize) {
        loop {
            let left = 2 * parent + 1;
            if left >= self.entries.len() {
                break;
            }
            let right = left + 1;
            let smallest_child =
                if right < self.entries.len() && self.entries[right] < self.entries[left] {
                    right
                } else {
                    left
                };
            if self.entries[parent] <= self.entries[smallest_child] {
                break;
            }
            self.entries.swap(parent, smallest_child);
            parent = smallest_child;
        }
    }
}

/// One admitted session's executor state. The session itself is dropped
/// (converted to its [`SimResult`]) the moment it finishes — or taken when
/// its camera leaves or migrates — so heap entries may reference slots
/// whose session is gone; the event loop skips those stale entries.
struct Slot {
    camera_index: usize,
    session: Option<Session>,
    now_s: f64,
    recovering: bool,
}

/// One entry of an accelerator's admission queue: either a camera that has
/// not started yet (`session: None`) or a mid-run migrant from a drained
/// accelerator awaiting resumption.
struct PendingEntry {
    camera_index: usize,
    session: Option<Box<Session>>,
    recovering: bool,
    /// The drain event's scheduled time, for migrants: queueing time counts
    /// toward [`ChurnMetrics::migration_stall_s`].
    drain_at_s: Option<f64>,
}

impl PendingEntry {
    /// A camera that has not run yet.
    fn fresh(camera_index: usize) -> Self {
        Self { camera_index, session: None, recovering: false, drain_at_s: None }
    }
}

/// A live session lifted off a draining accelerator, with the executor-side
/// state that must survive the move.
struct Migrant {
    camera_index: usize,
    session: Session,
    now_s: f64,
    recovering: bool,
}

/// What [`AccelLoop::leave`] found for a departing camera.
enum LeaveOutcome {
    /// The camera was live here: its partial result.
    Departed(SimResult),
    /// The camera was waiting in the admission queue. A never-started
    /// camera carries no result; a queued migrant reports its partial one.
    Dequeued(Option<SimResult>),
    /// The camera is not on this accelerator (elsewhere, or finished).
    NotHere,
}

/// What one accelerator's event loop produced.
struct AccelOutcome {
    /// `(camera index, result)` for every camera that ran here.
    results: Vec<(usize, SimResult)>,
    /// Stretch factor of every arbitrated (label/retrain) step.
    stretches: Vec<f64>,
    /// Total phases executed (including waits).
    steps: usize,
    /// Arbitrated session-seconds executed (the accelerator's busy time).
    busy_s: f64,
    /// Cluster time at which the last resident finished.
    makespan_s: f64,
    /// Peak event-heap depth.
    peak_depth: usize,
    /// Cameras that waited in the admission queue.
    queued: usize,
    /// Virtual seconds queued migrants stalled here before resuming.
    stall_s: f64,
    /// Edge-tier counters of every session finalised on this accelerator.
    edge: EdgeAccum,
}

/// One accelerator's re-entrant virtual-time event loop. Runs to completion
/// in one [`AccelLoop::run_until`] call on the sharing-free path, or in
/// window-bounded increments (state persisting across barriers) when a
/// cross-camera share policy is active.
struct AccelLoop<'a> {
    accel: usize,
    cameras: &'a [(String, SimConfig)],
    arbiter: Box<dyn arbiter::Arbiter>,
    record_labels: bool,
    /// Resident-session bound (`usize::MAX` when unbounded).
    capacity: usize,
    /// Whether this accelerator has been drained by a churn event; drained
    /// loops accept no further work.
    drained: bool,
    pending: VecDeque<PendingEntry>,
    slots: Vec<Slot>,
    heap: DueHeap,
    /// Slot indices of the currently resident (unfinished) sessions, in
    /// admission order; a slot's index doubles as its admission index.
    active: Vec<usize>,
    seq: u64,
    outcome: AccelOutcome,
    /// `(camera index, batch)` of freshly teacher-labeled samples collected
    /// since the last [`AccelLoop::take_exports`] drain.
    exports: Vec<(usize, Vec<LabeledSample>)>,
    /// Whether windowed runs batch co-resident retraining phases into one
    /// stacked dispatch at each window's start ([`Cluster::batch_retraining`]).
    batch: bool,
    /// The stacked dispatch's shared scratch arena, reused across windows.
    batch_scratch: TrainScratch,
    /// Reusable peer-summary buffer for arbitration requests, refilled per
    /// arbitrated step instead of allocated.
    residents: Vec<PeerSession>,
}

impl<'a> AccelLoop<'a> {
    /// Creates the loop and admits the initial residents at cluster time 0.
    fn new(
        accel: usize,
        assigned: &[usize],
        cameras: &'a [(String, SimConfig)],
        arbiter_name: &str,
        capacity: Option<usize>,
        record_labels: bool,
        batch: bool,
    ) -> Result<Self> {
        let arbiter = arbiter::create(arbiter_name)?;
        let resident_cap = capacity.unwrap_or(usize::MAX);
        let pending: VecDeque<PendingEntry> =
            assigned.iter().skip(resident_cap).map(|&index| PendingEntry::fresh(index)).collect();
        let queued = pending.len();
        let mut this = Self {
            accel,
            cameras,
            arbiter,
            record_labels,
            capacity: resident_cap,
            drained: false,
            pending,
            slots: Vec::with_capacity(assigned.len().min(resident_cap)),
            heap: DueHeap::new(),
            active: Vec::new(),
            seq: 0,
            outcome: AccelOutcome {
                results: Vec::with_capacity(assigned.len()),
                stretches: Vec::new(),
                steps: 0,
                busy_s: 0.0,
                makespan_s: 0.0,
                peak_depth: 0,
                queued,
                stall_s: 0.0,
                edge: EdgeAccum::default(),
            },
            exports: Vec::new(),
            batch,
            batch_scratch: TrainScratch::new(),
            residents: Vec::new(),
        };
        for &camera_index in assigned.iter().take(resident_cap) {
            this.admit(camera_index, 0.0)?;
        }
        this.outcome.peak_depth = this.heap.len();
        Ok(this)
    }

    /// Whether every assigned session has finished.
    fn is_done(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of currently resident (live) sessions.
    fn live_count(&self) -> usize {
        self.active.len()
    }

    /// Load figure for deterministic placement decisions: live residents
    /// plus queued cameras.
    fn load(&self) -> usize {
        self.active.len() + self.pending.len()
    }

    /// Cluster time of this loop's next due event, if any remains.
    fn next_due_s(&self) -> Option<f64> {
        self.heap.peek().map(|due| due.at)
    }

    /// Pre-executes, at a window's start, the first phase of every resident
    /// session due inside the window, batching the retraining phases among
    /// them into **one** stacked GEMM dispatch ([`train_stacked`]) that
    /// shares a single scratch arena across the co-resident networks.
    ///
    /// Bit-identity with unstaged execution holds because nothing outside a
    /// session touches it between barriers (the module's barrier
    /// discipline), each session's numeric work is independent of its
    /// peers', and the produced events stay queued inside the session until
    /// the event loop pops them at the exact time — and in the exact order —
    /// it would have executed them (property-tested batched ≡ unbatched).
    /// Only sessions whose next pop lands inside this window are staged;
    /// staging a later-window phase would leak state past a barrier.
    fn stage_window(&mut self, stop_at_s: f64) -> Result<()> {
        let mut staged: Vec<(usize, StagedRetrain)> = Vec::new();
        for &slot_index in &self.active {
            let slot = &mut self.slots[slot_index];
            if slot.now_s >= stop_at_s {
                continue;
            }
            let Some(session) = slot.session.as_mut() else { continue };
            let camera_name = &self.cameras[slot.camera_index].0;
            if let Some(retrain) =
                session.stage_phase().map_err(|e| prefix_camera(camera_name, e))?
            {
                staged.push((slot_index, retrain));
            }
        }
        if staged.is_empty() {
            return Ok(());
        }
        staged.sort_by_key(|&(slot_index, _)| slot_index);
        let mut jobs: Vec<StackedJob<'_>> = Vec::with_capacity(staged.len());
        {
            let mut wanted = staged.iter();
            let mut next = wanted.next();
            for (index, slot) in self.slots.iter_mut().enumerate() {
                let Some(&(slot_index, ref retrain)) = next else { break };
                if slot_index != index {
                    continue;
                }
                let session = slot
                    .session
                    .as_mut()
                    // lint: allow(panic) — only slots with a live session
                    // were staged a few lines up, and nothing drops sessions
                    // in between
                    .expect("staged slots hold live sessions");
                let (net, learning_rate, batch_size) = session.stacked_parts();
                jobs.push(StackedJob {
                    net,
                    rows: retrain.train.iter().map(|s| s.features.as_slice()).collect(),
                    labels: retrain.train.iter().map(|s| s.teacher_label).collect(),
                    epochs: retrain.epochs,
                    batch_size,
                    learning_rate,
                });
                next = wanted.next();
            }
        }
        train_stacked(&mut jobs, &mut self.batch_scratch).map_err(CoreError::from)?;
        drop(jobs);
        for (slot_index, retrain) in staged {
            let slot = &mut self.slots[slot_index];
            let camera_name = &self.cameras[slot.camera_index].0;
            slot.session
                .as_mut()
                // lint: allow(panic) — same invariant as the job-building
                // walk above
                .expect("staged slots hold live sessions")
                .finish_staged_retrain(retrain)
                .map_err(|e| prefix_camera(camera_name, e))?;
        }
        Ok(())
    }

    /// Pops and executes events due strictly before `stop_at_s` (all
    /// remaining events when `None`), forwarding each step's burst to the
    /// observer if one is given. Loop state persists, so the next call
    /// resumes exactly where this one stopped.
    fn run_until(
        &mut self,
        stop_at_s: Option<f64>,
        mut observer: Option<&mut dyn SimObserver>,
    ) -> Result<()> {
        if self.batch {
            if let Some(stop) = stop_at_s {
                self.stage_window(stop)?;
            }
        }
        loop {
            let due = match self.heap.peek() {
                Some(due) => due,
                None => return Ok(()),
            };
            if let Some(stop) = stop_at_s {
                if due.at >= stop {
                    return Ok(());
                }
            }
            self.heap.pop();
            if self.slots[due.slot].session.is_none() {
                // A stale entry: the slot's camera left or migrated away at
                // a churn barrier after this entry was queued.
                continue;
            }
            let camera_index = self.slots[due.slot].camera_index;
            let camera_name = &self.cameras[camera_index].0;
            // A staged phase already shipped its uplink bytes at the
            // window's start; its parked baseline (consumed here either
            // way, so it never outlives its burst) replaces the live meter
            // read, keeping the observer's delta identical to an unstaged
            // run.
            let staged_baseline = self.slots[due.slot]
                .session
                .as_mut()
                .and_then(Session::take_staged_uplink_baseline);
            let uplink_before = if observer.is_some() {
                staged_baseline.or_else(|| {
                    self.slots[due.slot].session.as_ref().and_then(Session::uplink_meter)
                })
            } else {
                None
            };
            let events = self.slots[due.slot]
                .session
                .as_mut()
                // lint: allow(panic) — is_none() continue above guarantees the
                // slot still holds a live session
                .expect("presence checked above")
                .step_phase()
                .map_err(|e| prefix_camera(camera_name, e))?;

            // A drift response entering this step marks the session as
            // recovering *before* arbitration, so drift-aware arbiters can
            // boost the response itself; the recovery ends once a retraining
            // phase completes (checked after the grant below).
            if events.iter().any(|e| matches!(e, SessionEvent::Drift { .. })) {
                self.slots[due.slot].recovering = true;
            }
            let phase = events.iter().rev().find_map(|event| match event {
                SessionEvent::Phase(p) => Some(*p),
                _ => None,
            });

            match phase {
                Some(phase) => {
                    self.outcome.steps += 1;
                    // A cloud-offloaded labeling phase consumed no local
                    // accelerator compute — the uplink already charged its
                    // bytes and latency — so, like a wait, it passes through
                    // unarbitrated and unstretched.
                    let offloaded = phase.kind == PhaseKind::Label
                        && self.slots[due.slot]
                            .session
                            .as_ref()
                            .is_some_and(Session::last_phase_offloaded);
                    let arbitrated =
                        !offloaded && matches!(phase.kind, PhaseKind::Label | PhaseKind::Retrain);
                    let stretch = if arbitrated {
                        self.residents.clear();
                        for &slot in &self.active {
                            self.residents.push(PeerSession {
                                camera_index: self.slots[slot].camera_index,
                                admission_index: slot,
                                recovering: self.slots[slot].recovering,
                            });
                        }
                        let share = self.arbiter.grant(&GrantRequest {
                            now_s: due.at,
                            accelerator: self.accel,
                            camera: camera_name,
                            camera_index,
                            admission_index: due.slot,
                            recovering: self.slots[due.slot].recovering,
                            residents: &self.residents,
                        });
                        if !share.is_finite() || share <= 0.0 || share > 1.0 {
                            return Err(CoreError::InvalidConfig {
                                reason: format!(
                                    "arbiter '{}' granted an invalid capacity share ({share}) to \
                                     camera '{camera_name}'; shares must lie in (0, 1]",
                                    self.arbiter.name()
                                ),
                            });
                        }
                        self.outcome.busy_s += phase.duration_s;
                        1.0 / share
                    } else {
                        // Waits consume no accelerator compute, so they pass
                        // through unstretched and unarbitrated.
                        1.0
                    };
                    if arbitrated {
                        self.outcome.stretches.push(stretch);
                    }
                    if phase.kind == PhaseKind::Retrain {
                        self.slots[due.slot].recovering = false;
                    }
                    if self.record_labels && phase.kind == PhaseKind::Label {
                        let fresh = self.slots[due.slot]
                            .session
                            .as_mut()
                            // lint: allow(panic) — the same slot produced the
                            // phase a few lines up; nothing drops it in between
                            .expect("the session just executed a phase")
                            .take_fresh_labels();
                        if !fresh.is_empty() {
                            self.exports.push((camera_index, fresh));
                        }
                    }
                    self.slots[due.slot].now_s += phase.duration_s * stretch;
                    let at = self.slots[due.slot].now_s;
                    self.heap.push(Due { at, seq: self.seq, slot: due.slot });
                    self.seq += 1;
                    self.outcome.peak_depth = self.outcome.peak_depth.max(self.heap.len());
                }
                None => {
                    // The session finished (the burst ended with `Finished`,
                    // possibly after trailing accuracy flushes): collect its
                    // result now and drop the session so finished cameras
                    // never accumulate live model state.
                    // lint: allow(panic) — guarded by the same is_none() check
                    // that admitted this heap entry
                    let session =
                        self.slots[due.slot].session.take().expect("presence checked on pop");
                    if let Some(accum) = session.edge_accum() {
                        self.outcome.edge.merge(&accum);
                    }
                    self.outcome.results.push((camera_index, session.into_result()));
                    self.active.retain(|&slot| slot != due.slot);
                    self.outcome.makespan_s =
                        self.outcome.makespan_s.max(self.slots[due.slot].now_s);
                    let at = self.slots[due.slot].now_s;
                    self.start_next_pending(at)?;
                }
            }
            if let Some(observer) = observer.as_deref_mut() {
                observer.on_step_context(camera_name, camera_index, self.accel);
                let uplink_after =
                    self.slots[due.slot].session.as_ref().and_then(Session::uplink_meter);
                if let (Some((bytes0, labels0)), Some((bytes1, labels1))) =
                    (uplink_before, uplink_after)
                {
                    let bytes = bytes1.saturating_sub(bytes0);
                    let labels = labels1.saturating_sub(labels0);
                    if bytes > 0 || labels > 0 {
                        let at = self.slots[due.slot].now_s;
                        observer.on_uplink_transfer(camera_name, at, bytes, labels as usize);
                    }
                }
                forward(observer, &events);
            }
        }
    }

    /// Creates a camera's session and enters it into this accelerator's
    /// event loop at cluster time `at`.
    fn admit(&mut self, camera_index: usize, at: f64) -> Result<()> {
        let (name, config) = &self.cameras[camera_index];
        let mut session = Session::new(config.clone()).map_err(|e| prefix_camera(name, e))?;
        session.set_record_labels(self.record_labels);
        self.admit_session(camera_index, session, at, false);
        Ok(())
    }

    /// Enters an existing (possibly mid-run) session into this
    /// accelerator's event loop at cluster time `at` — the resumption half
    /// of a snapshot migration.
    fn admit_session(
        &mut self,
        camera_index: usize,
        mut session: Session,
        at: f64,
        recovering: bool,
    ) {
        session.set_record_labels(self.record_labels);
        self.slots.push(Slot { camera_index, session: Some(session), now_s: at, recovering });
        self.heap.push(Due { at, seq: self.seq, slot: self.slots.len() - 1 });
        self.active.push(self.slots.len() - 1);
        self.seq += 1;
        self.outcome.peak_depth = self.outcome.peak_depth.max(self.heap.len());
    }

    /// Queues work behind the capacity bound. Callers count the wait in
    /// `outcome.queued` only when the camera *newly* enters a queue —
    /// re-homing an already-waiting entry is not a second wait.
    fn enqueue(&mut self, entry: PendingEntry) {
        self.pending.push_back(entry);
    }

    /// Places re-homed work from a drained accelerator: starts it
    /// immediately at `at_s` when capacity allows — an idle accelerator
    /// never revisits its queue on its own, so deferring would strand the
    /// camera — and queues it otherwise.
    fn place(&mut self, entry: PendingEntry, at_s: f64) -> Result<()> {
        if self.live_count() >= self.capacity {
            self.enqueue(entry);
            return Ok(());
        }
        match entry.session {
            Some(session) => {
                if let Some(drain_at_s) = entry.drain_at_s {
                    self.outcome.stall_s += (at_s - drain_at_s).max(0.0);
                }
                self.admit_session(entry.camera_index, *session, at_s, entry.recovering);
            }
            None => self.admit(entry.camera_index, at_s)?,
        }
        Ok(())
    }

    /// Starts the next queued camera (or resumes a queued migrant) at
    /// cluster time `at`, if any is waiting.
    fn start_next_pending(&mut self, at: f64) -> Result<()> {
        let Some(next) = self.pending.pop_front() else { return Ok(()) };
        match next.session {
            Some(session) => {
                // A queued migrant's stall spans from its drain event to
                // this resumption.
                if let Some(drain_at_s) = next.drain_at_s {
                    self.outcome.stall_s += (at - drain_at_s).max(0.0);
                }
                self.admit_session(next.camera_index, *session, at, next.recovering);
            }
            None => self.admit(next.camera_index, at)?,
        }
        self.outcome.peak_depth = self.outcome.peak_depth.max(self.heap.len());
        Ok(())
    }

    /// Drains this accelerator at a churn barrier: marks it closed, clears
    /// its event heap, and lifts out every live session (in admission
    /// order) and queued entry for re-homing elsewhere.
    fn drain_accelerator(&mut self) -> (Vec<Migrant>, Vec<PendingEntry>) {
        self.drained = true;
        self.heap.clear();
        let pending: Vec<PendingEntry> = std::mem::take(&mut self.pending).into_iter().collect();
        let mut migrants = Vec::new();
        for slot_index in std::mem::take(&mut self.active) {
            let slot = &mut self.slots[slot_index];
            if let Some(session) = slot.session.take() {
                // This accelerator served the resident up to its next-due
                // time; fold that into the local makespan so the drained
                // accelerator's utilization stays busy_s-consistent instead
                // of reporting 0 (or >1) after the migration.
                self.outcome.makespan_s = self.outcome.makespan_s.max(slot.now_s);
                migrants.push(Migrant {
                    camera_index: slot.camera_index,
                    session,
                    now_s: slot.now_s,
                    recovering: slot.recovering,
                });
            }
        }
        (migrants, pending)
    }

    /// Removes a departing camera at a churn barrier, freeing its capacity
    /// for the next queued camera (which starts at `boundary_s`).
    fn leave(&mut self, camera_index: usize, boundary_s: f64) -> Result<LeaveOutcome> {
        let live = self.active.iter().position(|&slot| {
            self.slots[slot].camera_index == camera_index && self.slots[slot].session.is_some()
        });
        if let Some(position) = live {
            let slot_index = self.active.remove(position);
            // lint: allow(panic) — the position search above only matched
            // slots whose session.is_some()
            let session =
                self.slots[slot_index].session.take().expect("position matched a live session");
            if let Some(accum) = session.edge_accum() {
                self.outcome.edge.merge(&accum);
            }
            // The departure happens at the barrier; the freed capacity goes
            // to the next queued camera from the same moment.
            self.outcome.makespan_s = self.outcome.makespan_s.max(boundary_s);
            self.start_next_pending(boundary_s)?;
            return Ok(LeaveOutcome::Departed(session.into_result()));
        }
        if let Some(position) =
            self.pending.iter().position(|entry| entry.camera_index == camera_index)
        {
            // lint: allow(panic) — position came from iter().position() on
            // the same queue one line up
            let entry = self.pending.remove(position).expect("position is in bounds");
            return Ok(LeaveOutcome::Dequeued(entry.session.map(|session| {
                if let Some(accum) = session.edge_accum() {
                    self.outcome.edge.merge(&accum);
                }
                session.into_result()
            })));
        }
        Ok(LeaveOutcome::NotHere)
    }

    /// Drains the freshly labeled batches collected since the last drain.
    fn take_exports(&mut self) -> Vec<(usize, Vec<LabeledSample>)> {
        std::mem::take(&mut self.exports)
    }

    /// The still-running sessions hosted here, with their camera indices.
    fn live_sessions(&mut self) -> impl Iterator<Item = (usize, &mut Session)> {
        self.slots.iter_mut().filter_map(|slot| {
            let camera_index = slot.camera_index;
            slot.session.as_mut().map(|session| (camera_index, session))
        })
    }

    /// Finalises the loop into its outcome (call only once drained).
    fn into_outcome(mut self) -> AccelOutcome {
        debug_assert!(self.heap.is_empty(), "outcomes are collected only after the loop drained");
        debug_assert!(
            self.active.is_empty(),
            "the event loop drains only when every session finished"
        );
        self.outcome.results.sort_by_key(|(camera_index, _)| *camera_index);
        self.outcome
    }
}

/// The sharing-free execution: every accelerator loop runs to completion
/// independently, spread across worker threads (or serially under an
/// observer).
fn run_isolated(
    setup: &ExecSetup<'_>,
    mut observer: Option<&mut dyn SimObserver>,
) -> Result<Vec<AccelOutcome>> {
    if let Some(observer) = observer.take() {
        // Observed runs execute serially so the event stream needs no
        // locking and arrives in a stable order.
        let mut outcomes = Vec::with_capacity(setup.assignment.len());
        for (accel, assigned) in setup.assignment.iter().enumerate() {
            let mut accel_loop = AccelLoop::new(
                accel,
                assigned,
                setup.cameras,
                setup.arbiter,
                setup.capacity,
                false,
                setup.batch,
            )?;
            accel_loop.run_until(None, Some(&mut *observer))?;
            outcomes.push(accel_loop.into_outcome());
        }
        return Ok(outcomes);
    }
    let accelerators = setup.assignment.len();
    let workers = setup.threads.min(accelerators.max(1)).max(1);
    let next = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    let slots: Mutex<Vec<Option<Result<AccelOutcome>>>> =
        Mutex::new((0..accelerators).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                if failed.load(Ordering::Relaxed) {
                    break;
                }
                let accel = next.fetch_add(1, Ordering::Relaxed);
                let Some(assigned) = setup.assignment.get(accel) else { break };
                let outcome = AccelLoop::new(
                    accel,
                    assigned,
                    setup.cameras,
                    setup.arbiter,
                    setup.capacity,
                    false,
                    setup.batch,
                )
                .and_then(|mut accel_loop| {
                    accel_loop.run_until(None, None)?;
                    Ok(accel_loop.into_outcome())
                });
                if outcome.is_err() {
                    failed.store(true, Ordering::Relaxed);
                }
                // lint: allow(panic) — a poisoned lock means a sibling worker
                // already panicked; propagating is the only sound response
                slots.lock().expect("cluster outcome lock poisoned")[accel] = Some(outcome);
            });
        }
    });
    // lint: allow(panic) — same poisoning invariant as the per-worker lock
    let outcomes = slots.into_inner().expect("cluster outcome lock poisoned");
    // Surface the error of the lowest-indexed accelerator that reported
    // one. When several accelerators fail concurrently in the threaded
    // path, which of them got to report before the abort flag stopped
    // the others can vary — but at least one real error always
    // surfaces, and the Ok path stays fully deterministic.
    if let Some(err) = outcomes.iter().flatten().find_map(|outcome| outcome.as_ref().err()) {
        return Err(err.clone());
    }
    Ok(outcomes
        .into_iter()
        .map(|outcome| {
            outcome
                // lint: allow(panic) — the scoped-thread join guarantees every
                // slot was filled before into_inner()
                .expect("without errors every accelerator ran")
                // lint: allow(panic) — the find_map above returned early on
                // any Err, so only Ok outcomes remain
                .expect("errors were surfaced above")
        })
        .collect())
}

/// The windowed execution, used whenever barriers are needed: cross-camera
/// sharing (`policy_name` is `Some`), elastic membership (`events` is
/// non-empty), or both. Accelerator loops advance window by window (in
/// parallel inside a window); every boundary runs the deterministic,
/// single-threaded label exchange followed by the barrier's churn events.
fn run_windowed(
    setup: &ExecSetup<'_>,
    policy_name: Option<&str>,
    offload_name: &str,
    window_s: f64,
    events: &[PreparedEvent],
    mut observer: Option<&mut dyn SimObserver>,
) -> Result<(Vec<AccelOutcome>, ShareMetrics, ChurnOutcome)> {
    let mut policy = policy_name.map(share::create).transpose()?;
    // The reserved "local-only" policy never routes anything, so a windowed
    // run under it (sharing or churn forced the barriers) skips routing
    // entirely — sessions keep their Local default, exactly the pre-edge
    // behavior.
    let mut offload = if edge::is_local_only(offload_name) {
        None
    } else {
        Some(edge::create_offload(offload_name)?)
    };
    let record_labels = policy.is_some();
    let mut loops = setup
        .assignment
        .iter()
        .enumerate()
        .map(|(accel, assigned)| {
            AccelLoop::new(
                accel,
                assigned,
                setup.cameras,
                setup.arbiter,
                setup.capacity,
                record_labels,
                setup.batch,
            )
        })
        .collect::<Result<Vec<_>>>()?;
    let mut metrics = match &policy {
        Some(policy) => ShareMetrics::fresh(policy.name(), window_s),
        None => ShareMetrics::disabled(window_s),
    };
    let mut churn = ChurnOutcome {
        metrics: ChurnMetrics {
            peak_residency: loops.iter().map(AccelLoop::live_count).sum(),
            ..ChurnMetrics::default()
        },
        extra_results: Vec::new(),
        edge: EdgeAccum::default(),
    };
    let mut correlations: BTreeMap<(usize, usize), f64> = BTreeMap::new();
    let mut window = 0usize;
    let mut next_event = 0usize;
    // Route the initial residents before any simulation time passes: the
    // run's opening stretch is window 0, decided at a virtual barrier at 0 s.
    if let Some(offload) = offload.as_deref_mut() {
        route_offload(&mut loops, offload, setup.cameras, 0, 0.0, observer.as_deref_mut())?;
    }
    while loops.iter().any(|accel_loop| !accel_loop.is_done()) || next_event < events.len() {
        // Jump straight to the window containing the earliest due event (or
        // ending at the earliest pending churn event), so long event-free
        // stretches cost no barrier rounds. Windows are absolute
        // (`k * window_s`), so skipped empty windows leave the indices and
        // boundaries of the windows that do run — and therefore every
        // exchange and churn barrier — unchanged.
        let mut target_window = f64::INFINITY;
        let earliest_due_s =
            loops.iter().filter_map(AccelLoop::next_due_s).fold(f64::INFINITY, f64::min);
        if earliest_due_s.is_finite() {
            // A due event at time t executes inside window floor(t / w).
            target_window = target_window.min((earliest_due_s / window_s).floor());
        }
        if let Some(event) = events.get(next_event) {
            // A churn event at time t fires at the first boundary >= t,
            // i.e. at the end of window ceil(t / w) - 1.
            target_window = target_window.min(((event.at_s / window_s).ceil() - 1.0).max(0.0));
        }
        if target_window.is_finite() {
            window = window.max(target_window as usize);
        }
        let boundary_s = (window as f64 + 1.0) * window_s;
        if let Some(observer) = observer.as_deref_mut() {
            for accel_loop in &mut loops {
                accel_loop.run_until(Some(boundary_s), Some(&mut *observer))?;
            }
        } else if setup.threads <= 1 || loops.len() <= 1 {
            for accel_loop in &mut loops {
                accel_loop.run_until(Some(boundary_s), None)?;
            }
        } else {
            run_window_threaded(&mut loops, boundary_s, setup.threads)?;
        }
        if let Some(policy) = policy.as_deref_mut() {
            exchange_window(
                &mut loops,
                policy,
                setup.cameras,
                &mut correlations,
                &mut metrics,
                window,
                boundary_s,
                observer.as_deref_mut(),
            )?;
        }
        while let Some(event) = events.get(next_event) {
            if event.at_s > boundary_s {
                break;
            }
            apply_churn(event, boundary_s, &mut loops, setup, &mut churn, observer.as_deref_mut())?;
            next_event += 1;
        }
        // Routing runs after churn so the policy sees the post-churn fleet
        // (joined cameras included, departed ones gone) for the window the
        // barrier opens.
        if let Some(offload) = offload.as_deref_mut() {
            route_offload(
                &mut loops,
                offload,
                setup.cameras,
                window + 1,
                boundary_s,
                observer.as_deref_mut(),
            )?;
        }
        if let Some(observer) = observer.as_deref_mut() {
            sample_barrier(&mut loops, setup.cameras, window_s, window, boundary_s, observer);
        }
        let residency: usize = loops.iter().map(AccelLoop::live_count).sum();
        churn.metrics.peak_residency = churn.metrics.peak_residency.max(residency);
        window += 1;
    }
    if policy.is_some() {
        metrics.windows = window;
    }
    Ok((loops.into_iter().map(AccelLoop::into_outcome).collect(), metrics, churn))
}

/// The surviving accelerator that should receive the next placed camera:
/// fewest live + queued sessions, ties to the lowest index — deterministic,
/// so churn placement never depends on thread scheduling.
fn pick_target(loops: &[AccelLoop<'_>]) -> Option<usize> {
    loops
        .iter()
        .enumerate()
        .filter(|(_, accel_loop)| !accel_loop.drained)
        .min_by_key(|(index, accel_loop)| (accel_loop.load(), *index))
        .map(|(index, _)| index)
}

/// Applies one churn event at a window barrier (single-threaded, in plan
/// order — the churn counterpart of [`exchange_window`]).
// lint: barrier-only(fleet membership changes between windows, in plan order, on one thread)
fn apply_churn(
    event: &PreparedEvent,
    boundary_s: f64,
    loops: &mut [AccelLoop<'_>],
    setup: &ExecSetup<'_>,
    churn: &mut ChurnOutcome,
    mut observer: Option<&mut (dyn SimObserver + '_)>,
) -> Result<()> {
    match event.action {
        ChurnAction::Join { camera_index } => {
            churn.metrics.joins += 1;
            // Where the join landed (resident or queued), for the observer;
            // `None` means the camera was orphaned or rejected.
            let mut placed = None;
            match pick_target(loops) {
                None => churn.metrics.orphaned_cameras += 1,
                Some(target) => {
                    let accel_loop = &mut loops[target];
                    if accel_loop.live_count() < accel_loop.capacity {
                        accel_loop.admit(camera_index, boundary_s)?;
                        placed = Some(target);
                    } else {
                        match setup.admission {
                            AdmissionPolicy::Queue => {
                                accel_loop.outcome.queued += 1;
                                accel_loop.enqueue(PendingEntry::fresh(camera_index));
                                placed = Some(target);
                            }
                            // Long-running clusters should not abort because
                            // one join found the fleet full: the denied
                            // camera is recorded instead.
                            AdmissionPolicy::Reject => churn.metrics.orphaned_cameras += 1,
                        }
                    }
                }
            }
            if let Some(observer) = observer.as_deref_mut() {
                observer.on_churn_join(&setup.cameras[camera_index].0, placed, boundary_s);
            }
        }
        ChurnAction::Leave { camera_index } => {
            churn.metrics.leaves += 1;
            for accel_loop in loops.iter_mut() {
                match accel_loop.leave(camera_index, boundary_s)? {
                    LeaveOutcome::Departed(result) => {
                        churn.extra_results.push((camera_index, result));
                        break;
                    }
                    LeaveOutcome::Dequeued(result) => {
                        if let Some(result) = result {
                            churn.extra_results.push((camera_index, result));
                        }
                        break;
                    }
                    // Not on this accelerator; a camera found nowhere has
                    // already finished, making the leave a no-op.
                    LeaveOutcome::NotHere => {}
                }
            }
            if let Some(observer) = observer.as_deref_mut() {
                observer.on_churn_leave(&setup.cameras[camera_index].0, boundary_s);
            }
        }
        ChurnAction::Drain { accelerator } => {
            churn.metrics.drains += 1;
            if let Some(observer) = observer.as_deref_mut() {
                observer.on_churn_drain(accelerator, boundary_s);
            }
            let (migrants, displaced) = loops[accelerator].drain_accelerator();
            for migrant in migrants {
                let camera_name = &setup.cameras[migrant.camera_index].0;
                // Live migration goes through the public snapshot format:
                // the restored session is bit-identical to the original
                // (property-tested), so drains never perturb results.
                let restored = Session::restore(migrant.session.snapshot())
                    .map_err(|e| prefix_camera(camera_name, e))?;
                // Where the migrant ended up, for the observer; `None` means
                // it was orphaned (no survivor, or a full Reject cluster).
                let mut destination = None;
                match pick_target(loops) {
                    None => {
                        // No accelerator left to run on: the camera is
                        // orphaned and reports its executed prefix.
                        churn.metrics.orphaned_cameras += 1;
                        if let Some(accum) = restored.edge_accum() {
                            churn.edge.merge(&accum);
                        }
                        churn.extra_results.push((migrant.camera_index, restored.into_result()));
                    }
                    Some(target) => {
                        let accel_loop = &mut loops[target];
                        if accel_loop.live_count() < accel_loop.capacity {
                            churn.metrics.migrations += 1;
                            churn.metrics.migration_stall_s +=
                                (migrant.now_s - event.at_s).max(0.0);
                            accel_loop.admit_session(
                                migrant.camera_index,
                                restored,
                                migrant.now_s,
                                migrant.recovering,
                            );
                            destination = Some(target);
                        } else {
                            match setup.admission {
                                AdmissionPolicy::Queue => {
                                    churn.metrics.migrations += 1;
                                    // The migrant's first wait in a queue.
                                    accel_loop.outcome.queued += 1;
                                    accel_loop.enqueue(PendingEntry {
                                        camera_index: migrant.camera_index,
                                        session: Some(Box::new(restored)),
                                        recovering: migrant.recovering,
                                        drain_at_s: Some(event.at_s),
                                    });
                                    destination = Some(target);
                                }
                                AdmissionPolicy::Reject => {
                                    churn.metrics.orphaned_cameras += 1;
                                    if let Some(accum) = restored.edge_accum() {
                                        churn.edge.merge(&accum);
                                    }
                                    churn
                                        .extra_results
                                        .push((migrant.camera_index, restored.into_result()));
                                }
                            }
                        }
                    }
                }
                if let Some(observer) = observer.as_deref_mut() {
                    observer.on_migration(camera_name, accelerator, destination, boundary_s);
                }
            }
            for entry in displaced {
                let camera_name = &setup.cameras[entry.camera_index].0;
                let mut destination = None;
                match pick_target(loops) {
                    None => {
                        churn.metrics.orphaned_cameras += 1;
                        if let Some(session) = entry.session {
                            if let Some(accum) = session.edge_accum() {
                                churn.edge.merge(&accum);
                            }
                            churn.extra_results.push((entry.camera_index, session.into_result()));
                        }
                    }
                    // Re-homed waiters start right away when the target has
                    // headroom (an idle target would otherwise never pop its
                    // queue and the camera would silently vanish) and do not
                    // count as a second queue wait otherwise.
                    Some(target) => {
                        loops[target].place(entry, boundary_s)?;
                        destination = Some(target);
                    }
                }
                if let Some(observer) = observer.as_deref_mut() {
                    observer.on_migration(camera_name, accelerator, destination, boundary_s);
                }
            }
        }
    }
    Ok(())
}

/// Advances every accelerator loop to the window boundary across worker
/// threads. Loops are split into contiguous chunks; which thread runs which
/// loop never affects results, only wall-clock time.
fn run_window_threaded(loops: &mut [AccelLoop<'_>], boundary_s: f64, threads: usize) -> Result<()> {
    let workers = threads.min(loops.len()).max(1);
    let chunk_len = loops.len().div_ceil(workers);
    let failures: Mutex<Vec<(usize, CoreError)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        let failures = &failures;
        for chunk in loops.chunks_mut(chunk_len) {
            scope.spawn(move || {
                for accel_loop in chunk {
                    if let Err(e) = accel_loop.run_until(Some(boundary_s), None) {
                        failures
                            .lock()
                            // lint: allow(panic) — poisoning implies a sibling
                            // worker panicked; propagate rather than mask it
                            .expect("window failure lock poisoned")
                            .push((accel_loop.accel, e));
                        break;
                    }
                }
            });
        }
    });
    // Like the isolated path, surface the lowest-indexed accelerator's
    // error among those that reported one this window.
    // lint: allow(panic) — same poisoning invariant as the per-worker lock
    let mut failures = failures.into_inner().expect("window failure lock poisoned");
    failures.sort_by_key(|(accel, _)| *accel);
    match failures.into_iter().next() {
        Some((_, e)) => Err(e),
        None => Ok(()),
    }
}

/// One window boundary's label exchange: drain every camera's fresh exports,
/// then walk importers and exporters in camera admission-index order, asking
/// the policy for an admit fraction per pair. Single-threaded and fully
/// ordered, so shared runs stay deterministic at any worker-thread count.
// One call site: barrier plumbing, not a reusable API surface.
// lint: barrier-only(labels cross cameras only between windows, in admission order, on one thread)
#[allow(clippy::too_many_arguments)]
fn exchange_window(
    loops: &mut [AccelLoop<'_>],
    policy: &mut dyn SharePolicy,
    cameras: &[(String, SimConfig)],
    correlations: &mut BTreeMap<(usize, usize), f64>,
    metrics: &mut ShareMetrics,
    window_index: usize,
    boundary_s: f64,
    mut observer: Option<&mut (dyn SimObserver + '_)>,
) -> Result<()> {
    let mut exports: BTreeMap<usize, Vec<LabeledSample>> = BTreeMap::new();
    for accel_loop in loops.iter_mut() {
        for (camera_index, batch) in accel_loop.take_exports() {
            exports.entry(camera_index).or_default().extend(batch);
        }
    }
    metrics.labels_exported += exports.values().map(Vec::len).sum::<usize>();
    if exports.is_empty() {
        return Ok(());
    }
    let mut importers: Vec<(usize, &mut Session)> = Vec::new();
    for accel_loop in loops.iter_mut() {
        importers.extend(accel_loop.live_sessions());
    }
    importers.sort_by_key(|(camera_index, _)| *camera_index);
    for (importer_index, session) in importers {
        for (&exporter_index, batch) in &exports {
            if exporter_index == importer_index {
                continue;
            }
            // Scenario attribute overlap is symmetric; memoise per pair.
            let key = (exporter_index.min(importer_index), exporter_index.max(importer_index));
            let correlation = *correlations.entry(key).or_insert_with(|| {
                cameras[importer_index]
                    .1
                    .scenario
                    .attribute_overlap(&cameras[exporter_index].1.scenario)
            });
            let ctx = ShareContext {
                window_index,
                boundary_s,
                exporter: &cameras[exporter_index].0,
                exporter_index,
                importer: &cameras[importer_index].0,
                importer_index,
                correlation,
                fresh_labels: batch.len(),
            };
            let fraction = policy.admit_fraction(&ctx);
            if !fraction.is_finite() || !(0.0..=1.0).contains(&fraction) {
                return Err(CoreError::InvalidConfig {
                    reason: format!(
                        "share policy '{}' returned an invalid admit fraction ({fraction}) for \
                         importer '{}'; fractions must lie in [0, 1]",
                        policy.name(),
                        cameras[importer_index].0
                    ),
                });
            }
            let admitted = (((batch.len() as f64) * fraction).round() as usize).min(batch.len());
            if admitted == 0 {
                // Only an outright refusal counts as a reject; a positive
                // fraction too small to round to one sample is a grant that
                // happened to admit nothing.
                if fraction == 0.0 {
                    metrics.import_rejects += 1;
                }
                continue;
            }
            session.admit_samples(batch.iter().take(admitted).cloned());
            if let Some(observer) = observer.as_deref_mut() {
                observer.on_share(
                    &cameras[exporter_index].0,
                    &cameras[importer_index].0,
                    admitted,
                    boundary_s,
                );
            }
            metrics.labels_reused += admitted;
            let labeling_sps = session.labeling_sps();
            if labeling_sps > 0.0 {
                metrics.labeling_seconds_saved += admitted as f64 / labeling_sps;
            }
        }
    }
    Ok(())
}

/// One window barrier's offload routing: walk the live, edge-configured
/// sessions in camera admission-index order and set each one's label route
/// for the upcoming window from the policy's decision. Single-threaded and
/// fully ordered — the routing counterpart of [`exchange_window`]. Cameras
/// without an edge tier are skipped (they always label locally), and
/// cameras admitted from a queue mid-window run their first partial window
/// on the Local default until the next barrier routes them.
// lint: barrier-only(routes rewrite between windows so a whole window runs on one route)
fn route_offload(
    loops: &mut [AccelLoop<'_>],
    policy: &mut dyn OffloadPolicy,
    cameras: &[(String, SimConfig)],
    window_index: usize,
    boundary_s: f64,
    mut observer: Option<&mut (dyn SimObserver + '_)>,
) -> Result<()> {
    let live_counts: Vec<usize> = loops.iter().map(AccelLoop::live_count).collect();
    let mut sessions: Vec<(usize, usize, &mut Session)> = Vec::new();
    for (accel, accel_loop) in loops.iter_mut().enumerate() {
        for (camera_index, session) in accel_loop.live_sessions() {
            sessions.push((camera_index, accel, session));
        }
    }
    sessions.sort_by_key(|(camera_index, _, _)| *camera_index);
    for (camera_index, accel, session) in sessions {
        if !session.has_edge_tier() {
            continue;
        }
        let (buffer_len, bytes_shipped, window_bytes) = session.offload_meter();
        let route = policy.route(&OffloadContext {
            window_index,
            boundary_s,
            camera: &cameras[camera_index].0,
            camera_index,
            accelerator: accel,
            resident_cameras: live_counts[accel],
            buffer_len,
            bytes_shipped,
            window_bytes,
        });
        session.set_label_route(route).map_err(|e| prefix_camera(&cameras[camera_index].0, e))?;
        if let Some(observer) = observer.as_deref_mut() {
            observer.on_offload_route(&cameras[camera_index].0, route, window_index, boundary_s);
        }
    }
    Ok(())
}

/// The observation half of a window barrier: fires
/// [`SimObserver::on_window_barrier`] for the window that just closed, then
/// one [`SimObserver::on_window_sample`] per live camera in admission-index
/// order, then one [`SimObserver::on_accelerator_sample`] per accelerator in
/// index order. Single-threaded and fully ordered, like every other barrier
/// stage, so sampled timeseries are bit-identical at any worker-thread
/// count. Runs after exchange / churn / routing so the samples describe the
/// post-barrier fleet.
// lint: barrier-only(observer sampling is ordered and single-threaded so timeseries stay bit-identical)
fn sample_barrier(
    loops: &mut [AccelLoop<'_>],
    cameras: &[(String, SimConfig)],
    window_s: f64,
    window_index: usize,
    boundary_s: f64,
    observer: &mut (dyn SimObserver + '_),
) {
    observer.on_window_barrier(window_index, boundary_s);
    let mut sessions: Vec<(usize, usize, &mut Session)> = Vec::new();
    for (accel, accel_loop) in loops.iter_mut().enumerate() {
        for (camera_index, session) in accel_loop.live_sessions() {
            sessions.push((camera_index, accel, session));
        }
    }
    sessions.sort_by_key(|(camera_index, _, _)| *camera_index);
    for (camera_index, accel, session) in sessions {
        let now_s = session.now_s();
        let (labels_local, labels_cloud) = match session.edge_accum() {
            Some(accum) => (accum.labels_local, accum.labels_cloud),
            None => (0, 0),
        };
        // "Fresh" relative to the closing window's span at this camera's
        // own clock (a queued-then-admitted camera may trail the boundary).
        let cutoff_s = (now_s - window_s).max(0.0);
        observer.on_window_sample(&WindowSample {
            window_index,
            boundary_s,
            camera: &cameras[camera_index].0,
            camera_index,
            accelerator: accel,
            now_s,
            accuracy: session.accuracy_timeline().last().map(|&(_, accuracy)| accuracy),
            buffer_len: session.buffer_len(),
            buffer_fresh_fraction: session.buffer_fresh_fraction(cutoff_s),
            labels_local,
            labels_cloud,
            in_flight_cloud_labels: session.in_flight_cloud_labels(),
        });
    }
    for accel_loop in loops.iter() {
        let busy_s = accel_loop.outcome.busy_s;
        observer.on_accelerator_sample(&AcceleratorSample {
            window_index,
            boundary_s,
            accelerator: accel_loop.accel,
            busy_s,
            utilization: if boundary_s > 0.0 { busy_s / boundary_s } else { 0.0 },
            live_sessions: accel_loop.live_count(),
            queued_sessions: accel_loop.pending.len(),
            event_depth: accel_loop.heap.len(),
            drained: accel_loop.drained,
        });
    }
}

/// Forwards one step's event burst to an observer, mirroring
/// [`Session::run_with`]'s dispatch. Every event first goes through the
/// [`SimObserver::on_event`] catch-all, so an observer (or a future event
/// kind missing a dedicated hook) can never silently lose events; the match
/// below is exhaustive on purpose — adding a [`SessionEvent`] variant is a
/// compile error here until its dispatch is decided.
fn forward(observer: &mut dyn SimObserver, events: &[SessionEvent]) {
    for event in events {
        observer.on_event(event);
        match event {
            SessionEvent::Phase(phase) => observer.on_phase(phase),
            SessionEvent::Drift { at_s, response_index } => {
                observer.on_drift(*at_s, *response_index);
            }
            SessionEvent::Accuracy { at_s, accuracy } => observer.on_accuracy(*at_s, *accuracy),
            SessionEvent::Finished => observer.on_finished(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::SchedulerKind;
    use crate::sim::test_support::short_config;
    use crate::sim::PhaseRecord;
    use crate::Fleet;

    fn two_camera_cluster(accelerators: usize) -> Cluster {
        Cluster::new(accelerators)
            .camera("calm", short_config(SchedulerKind::DaCapoSpatial))
            .camera("adaptive", short_config(SchedulerKind::DaCapoSpatiotemporal))
    }

    #[test]
    fn empty_clusters_zero_accelerators_and_duplicates_are_rejected() {
        assert!(Cluster::new(1).run().is_err());
        assert!(Cluster::new(0)
            .camera("a", short_config(SchedulerKind::NoAdaptation))
            .run()
            .is_err());
        let err = Cluster::new(1)
            .camera("a", short_config(SchedulerKind::NoAdaptation))
            .camera("a", short_config(SchedulerKind::NoAdaptation))
            .run()
            .unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");
        let err = Cluster::new(1)
            .capacity_per_accelerator(0)
            .camera("a", short_config(SchedulerKind::NoAdaptation))
            .run()
            .unwrap_err();
        assert!(err.to_string().contains("capacity"), "{err}");
    }

    #[test]
    fn bad_configs_and_unknown_arbiters_fail_before_any_simulation() {
        let mut broken = short_config(SchedulerKind::NoAdaptation);
        broken.scheduler = "not-a-registered-policy".into();
        let started = std::time::Instant::now();
        let err = Cluster::new(2)
            .camera("good", short_config(SchedulerKind::NoAdaptation))
            .camera("broken", broken)
            .run()
            .unwrap_err();
        assert!(err.to_string().contains("broken"), "{err}");
        assert!(started.elapsed().as_millis() < 500, "validation should fail fast");

        let started = std::time::Instant::now();
        let err = two_camera_cluster(1).arbiter("warp-arbiter").run().unwrap_err();
        assert!(err.to_string().contains("warp-arbiter"), "{err}");
        assert!(started.elapsed().as_millis() < 500, "validation should fail fast");
        assert!(two_camera_cluster(1).arbiter("priority:bogus").run().is_err());
    }

    #[test]
    fn unknown_share_policies_and_bad_windows_fail_before_any_simulation() {
        let started = std::time::Instant::now();
        let err = two_camera_cluster(1).share("telepathy").run().unwrap_err();
        assert!(err.to_string().contains("telepathy"), "{err}");
        assert!(started.elapsed().as_millis() < 500, "validation should fail fast");
        assert!(two_camera_cluster(1).share("correlated:2.0").run().is_err());
        for window_s in [0.0, -5.0, f64::NAN, f64::INFINITY] {
            let err = two_camera_cluster(1)
                .share("broadcast")
                .share_window_s(window_s)
                .run()
                .unwrap_err();
            assert!(err.to_string().contains("share window"), "{err}");
        }
        // The window is only consulted with sharing active: a degenerate
        // value still fails fast even under the default "none" policy, so
        // misconfigurations cannot lurk until someone enables sharing.
        assert!(two_camera_cluster(1).share_window_s(0.0).run().is_err());
    }

    #[test]
    fn dedicated_accelerators_reproduce_the_fleet_exactly() {
        let cluster = two_camera_cluster(2).run().unwrap();
        let fleet = Fleet::new()
            .camera("calm", short_config(SchedulerKind::DaCapoSpatial))
            .camera("adaptive", short_config(SchedulerKind::DaCapoSpatiotemporal))
            .run()
            .unwrap();
        assert_eq!(cluster.fleet, fleet);
        // No contention: every arbitrated step ran at full capacity.
        assert_eq!(cluster.contention.accelerators, 2);
        assert!((cluster.contention.p99_step_stretch - 1.0).abs() < 1e-12);
        assert!((cluster.contention.max_step_stretch - 1.0).abs() < 1e-12);
        assert_eq!(cluster.contention.queued_cameras, 0);
        assert_eq!(cluster.contention.peak_queue_depth, 2, "one event per dedicated camera");
        // Sharing is off by default.
        assert_eq!(cluster.share.policy, "none");
        assert_eq!(cluster.share.labels_reused, 0);
        assert_eq!(cluster.share.windows, 0);
    }

    #[test]
    fn contention_stretches_cluster_time_but_not_camera_results() {
        let dedicated = two_camera_cluster(2).run().unwrap();
        let contended = two_camera_cluster(1).run().unwrap();
        // Same sessions, same numbers — only the cluster clock differs.
        assert_eq!(dedicated.fleet, contended.fleet);
        assert!(contended.contention.makespan_s > dedicated.contention.makespan_s);
        // Two residents under fair-share: every contended step stretches 2x
        // until the first camera finishes.
        assert!((contended.contention.max_step_stretch - 2.0).abs() < 1e-12);
        assert!(contended.contention.mean_step_stretch > 1.0);
        assert!(contended.contention.p50_step_stretch >= 1.0);
        assert!(contended.contention.p99_step_stretch >= contended.contention.p50_step_stretch);
    }

    #[test]
    fn utilization_is_full_for_a_dedicated_busy_camera() {
        // A spatiotemporal session labels/retrains nearly continuously, so a
        // dedicated accelerator is almost always busy.
        let result = Cluster::new(1)
            .camera("only", short_config(SchedulerKind::DaCapoSpatiotemporal))
            .run()
            .unwrap();
        assert_eq!(result.contention.accelerator_utilization.len(), 1);
        let utilization = result.contention.accelerator_utilization[0];
        assert!((0.5..=1.0).contains(&utilization), "utilization {utilization}");
        assert!((result.contention.mean_accelerator_utilization - utilization).abs() < 1e-12);
        assert!(result.contention.makespan_s >= result.fleet.cameras[0].result.duration_s - 1e-9);
    }

    #[test]
    fn idle_accelerators_report_zero_utilization() {
        let result = Cluster::new(3)
            .camera("only", short_config(SchedulerKind::NoAdaptation))
            .run()
            .unwrap();
        assert_eq!(result.contention.accelerator_utilization.len(), 3);
        assert_eq!(result.contention.accelerator_utilization[1], 0.0);
        assert_eq!(result.contention.accelerator_utilization[2], 0.0);
        // A no-adaptation camera only waits: nothing is ever arbitrated.
        assert_eq!(result.contention.mean_step_stretch, 0.0);
        assert_eq!(result.contention.p99_step_stretch, 0.0);
    }

    #[test]
    fn admission_rejects_past_capacity_with_a_typed_error() {
        let err = two_camera_cluster(1)
            .capacity_per_accelerator(1)
            .admission(AdmissionPolicy::Reject)
            .run()
            .unwrap_err();
        match &err {
            CoreError::AdmissionRejected { camera, reason } => {
                assert_eq!(camera, "adaptive");
                assert!(reason.contains("capacity is 1"), "{reason}");
            }
            other => panic!("expected AdmissionRejected, got {other:?}"),
        }
        assert!(err.to_string().contains("adaptive"), "{err}");
    }

    #[test]
    fn queued_cameras_wait_for_a_resident_to_finish() {
        let queued = two_camera_cluster(1)
            .capacity_per_accelerator(1)
            .admission(AdmissionPolicy::Queue)
            .run()
            .unwrap();
        let unbounded = two_camera_cluster(1).run().unwrap();
        // Queueing serialises the cameras: identical results, no stretch,
        // and a makespan spanning both runs back to back.
        assert_eq!(queued.fleet, unbounded.fleet);
        assert_eq!(queued.contention.queued_cameras, 1);
        assert!((queued.contention.max_step_stretch - 1.0).abs() < 1e-12);
        assert!(queued.contention.makespan_s > unbounded.contention.makespan_s - 1e-9);
    }

    #[test]
    fn thread_count_never_changes_cluster_results() {
        let serial = two_camera_cluster(2).threads(1).run().unwrap();
        let parallel = two_camera_cluster(2).threads(8).run().unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn batched_retraining_is_bit_identical_to_unbatched() {
        // The windowed path is where batching engages: both cameras share
        // one accelerator, so their retraining phases co-occur in windows
        // and ride the stacked dispatch. Toggling the dispatch — at any
        // thread count — must never change a single bit of the result.
        let build = |batch: bool, threads: usize| {
            Cluster::new(1)
                .camera("a", short_config(SchedulerKind::DaCapoSpatiotemporal))
                .camera("b", short_config(SchedulerKind::DaCapoSpatial))
                .share("broadcast")
                .share_window_s(20.0)
                .threads(threads)
                .batch_retraining(batch)
                .run()
                .unwrap()
        };
        let unbatched = build(false, 1);
        assert_eq!(unbatched, build(true, 1));
        assert_eq!(unbatched, build(true, 2));
        assert_eq!(unbatched, build(true, 8));
    }

    #[test]
    fn batched_retraining_composes_with_churn_and_offload() {
        // Staging must respect barriers: joins, leaves, snapshot migration
        // (drain), and offload routing all mutate sessions between windows,
        // and a staged phase leaking past a barrier would diverge. Compare
        // the full composition batched vs unbatched.
        let build = |batch: bool| {
            let plan = ChurnPlan::new()
                .join(40.0, "late", edge_camera(SchedulerKind::DaCapoSpatiotemporal, "wifi"))
                .drain(60.0, 1)
                .leave(80.0, "a");
            Cluster::new(2)
                .camera("a", edge_camera(SchedulerKind::DaCapoSpatiotemporal, "wifi"))
                .camera("b", edge_camera(SchedulerKind::DaCapoSpatiotemporal, "wifi"))
                .camera("c", short_config(SchedulerKind::DaCapoSpatial))
                .share("broadcast")
                .share_window_s(20.0)
                .offload("threshold:1")
                .churn(plan)
                .batch_retraining(batch)
                .run()
                .unwrap()
        };
        assert_eq!(build(false), build(true));
    }

    #[test]
    fn explicit_none_share_matches_the_default_exactly() {
        let default = two_camera_cluster(1).run().unwrap();
        let explicit = two_camera_cluster(1).share("none").run().unwrap();
        assert_eq!(default, explicit);
    }

    #[test]
    fn broadcast_sharing_reuses_labels_between_co_located_cameras() {
        // Both short_config cameras walk the same scenario, so any export
        // is admissible; the spatiotemporal sessions label continuously.
        let shared = Cluster::new(1)
            .camera("a", short_config(SchedulerKind::DaCapoSpatiotemporal))
            .camera("b", short_config(SchedulerKind::DaCapoSpatiotemporal))
            .share("broadcast")
            .share_window_s(20.0)
            .run()
            .unwrap();
        assert_eq!(shared.share.policy, "broadcast");
        assert!(shared.share.windows >= 1);
        assert!(shared.share.labels_exported > 0, "{:?}", shared.share);
        assert!(shared.share.labels_reused > 0, "{:?}", shared.share);
        assert!(shared.share.labeling_seconds_saved > 0.0, "{:?}", shared.share);
        // Contention telemetry is unaffected by what lands in the buffers:
        // grants depend only on residency, which sharing does not change.
        let unshared = Cluster::new(1)
            .camera("a", short_config(SchedulerKind::DaCapoSpatiotemporal))
            .camera("b", short_config(SchedulerKind::DaCapoSpatiotemporal))
            .run()
            .unwrap();
        assert_eq!(shared.contention.accelerators, unshared.contention.accelerators);
        assert_eq!(shared.contention.queued_cameras, unshared.contention.queued_cameras);
    }

    #[test]
    fn invalid_admit_fractions_from_untrusted_policies_error_instead_of_corrupting() {
        use crate::share::{SharePolicy, SharePolicyFactory};
        use std::sync::Arc;

        struct NanAdmit;
        impl SharePolicy for NanAdmit {
            fn name(&self) -> String {
                "nan-admit".to_string()
            }
            fn admit_fraction(&mut self, _ctx: &ShareContext<'_>) -> f64 {
                f64::NAN
            }
        }
        struct NanAdmitFactory;
        impl SharePolicyFactory for NanAdmitFactory {
            fn name(&self) -> &str {
                "nan-admit"
            }
            fn build(&self, _params: Option<&str>) -> Result<Box<dyn SharePolicy>> {
                Ok(Box::new(NanAdmit))
            }
        }

        share::register(Arc::new(NanAdmitFactory));
        let err = Cluster::new(1)
            .camera("a", short_config(SchedulerKind::DaCapoSpatiotemporal))
            .camera("b", short_config(SchedulerKind::DaCapoSpatiotemporal))
            .share("nan-admit")
            .run()
            .unwrap_err();
        assert!(err.to_string().contains("invalid admit fraction"), "{err}");
    }

    #[test]
    fn observed_runs_match_unobserved_runs_and_see_every_event() {
        #[derive(Default)]
        struct Counter {
            phases: usize,
            accuracy: usize,
            drifts: usize,
            finished: usize,
        }
        impl SimObserver for Counter {
            fn on_phase(&mut self, _phase: &PhaseRecord) {
                self.phases += 1;
            }
            fn on_drift(&mut self, _at_s: f64, _index: usize) {
                self.drifts += 1;
            }
            fn on_accuracy(&mut self, _at_s: f64, _accuracy: f64) {
                self.accuracy += 1;
            }
            fn on_finished(&mut self) {
                self.finished += 1;
            }
        }

        let mut counter = Counter::default();
        let observed = two_camera_cluster(1).run_with(&mut counter).unwrap();
        let plain = two_camera_cluster(1).run().unwrap();
        assert_eq!(observed, plain, "observation must not perturb the run");
        let phases: usize = observed.fleet.cameras.iter().map(|c| c.result.phases.len()).sum();
        let accuracy: usize =
            observed.fleet.cameras.iter().map(|c| c.result.accuracy_timeline.len()).sum();
        assert_eq!(counter.phases, phases);
        assert_eq!(counter.accuracy, accuracy);
        assert_eq!(counter.drifts, observed.fleet.total_drift_responses);
        assert_eq!(counter.finished, observed.fleet.cameras.len());
    }

    #[test]
    fn observed_shared_runs_match_unobserved_shared_runs() {
        #[derive(Default)]
        struct Counter {
            finished: usize,
        }
        impl SimObserver for Counter {
            fn on_finished(&mut self) {
                self.finished += 1;
            }
        }
        let build = || {
            Cluster::new(1)
                .camera("a", short_config(SchedulerKind::DaCapoSpatiotemporal))
                .camera("b", short_config(SchedulerKind::DaCapoSpatial))
                .share("broadcast")
                .share_window_s(25.0)
        };
        let mut counter = Counter::default();
        let observed = build().run_with(&mut counter).unwrap();
        let plain = build().run().unwrap();
        assert_eq!(observed, plain, "observation must not perturb a shared run");
        assert_eq!(counter.finished, 2);
    }

    #[test]
    fn invalid_shares_from_untrusted_arbiters_error_instead_of_spinning() {
        use crate::arbiter::{Arbiter, ArbiterFactory, GrantRequest};
        use std::sync::Arc;

        struct NanShare;
        impl Arbiter for NanShare {
            fn name(&self) -> String {
                "nan-share".to_string()
            }
            fn grant(&mut self, _request: &GrantRequest<'_>) -> f64 {
                f64::NAN
            }
        }
        struct NanShareFactory;
        impl ArbiterFactory for NanShareFactory {
            fn name(&self) -> &str {
                "nan-share"
            }
            fn build(&self, _params: Option<&str>) -> Result<Box<dyn Arbiter>> {
                Ok(Box::new(NanShare))
            }
        }

        arbiter::register(Arc::new(NanShareFactory));
        let err = two_camera_cluster(1).arbiter("nan-share").run().unwrap_err();
        assert!(err.to_string().contains("invalid capacity share"), "{err}");
    }

    #[test]
    fn drift_first_changes_contention_but_never_camera_results() {
        let fair = Cluster::new(1)
            .camera("a", short_config(SchedulerKind::DaCapoSpatiotemporal))
            .camera("b", short_config(SchedulerKind::DaCapoSpatial))
            .run()
            .unwrap();
        let drift_first = Cluster::new(1)
            .arbiter("drift-first:4")
            .camera("a", short_config(SchedulerKind::DaCapoSpatiotemporal))
            .camera("b", short_config(SchedulerKind::DaCapoSpatial))
            .run()
            .unwrap();
        assert_eq!(fair.fleet, drift_first.fleet);
        // The spatiotemporal camera drifts (see sim tests), so drift-first
        // reallocates: its recovery steps run at a 5/4 stretch instead of
        // the fair 2x, which shows up in the contention aggregates.
        assert!(fair.fleet.total_drift_responses >= 1);
        assert_ne!(fair.contention, drift_first.contention);
    }

    #[test]
    fn explicit_empty_churn_plan_matches_the_default_exactly() {
        let default = two_camera_cluster(1).run().unwrap();
        let explicit = two_camera_cluster(1).churn(ChurnPlan::new()).run().unwrap();
        assert_eq!(default, explicit);
        assert_eq!(default.churn.joins, 0);
        assert_eq!(default.churn.migrations, 0);
        assert_eq!(default.churn.peak_residency, 2);
    }

    #[test]
    fn joined_cameras_run_to_completion_and_extend_the_fleet() {
        let plan =
            ChurnPlan::new().join(30.0, "late", short_config(SchedulerKind::DaCapoSpatiotemporal));
        let result = two_camera_cluster(2).churn(plan).run().unwrap();
        assert_eq!(result.churn.joins, 1);
        assert_eq!(result.fleet.cameras.len(), 3);
        assert_eq!(result.fleet.cameras[2].camera, "late", "joins follow the initial set");
        let late = result.camera("late").expect("joined camera reports a result");
        // The joined camera ran its entire scenario (120 s short_config).
        assert!((late.duration_s - 120.0).abs() < 1e-9);
        // Contention aside, a joined camera's numbers match a solo run.
        let solo = crate::ClSimulator::new(short_config(SchedulerKind::DaCapoSpatiotemporal))
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(late, &solo);
        // It joined at the first 60 s barrier, so the cluster clock ran at
        // least to 60 + 120.
        assert!(result.contention.makespan_s >= 180.0 - 1e-9);
        assert_eq!(result.churn.peak_residency, 3);
    }

    #[test]
    fn leaving_cameras_report_partial_results_at_the_barrier() {
        let plan = ChurnPlan::new().leave(60.0, "adaptive");
        let result = two_camera_cluster(2).churn(plan).run().unwrap();
        assert_eq!(result.churn.leaves, 1);
        assert_eq!(result.fleet.cameras.len(), 2);
        let departed = result.camera("adaptive").expect("partial result present");
        assert!(
            departed.duration_s < 120.0 - 1e-9,
            "a mid-run leave covers only the executed prefix ({} s)",
            departed.duration_s
        );
        // The survivor is untouched.
        let full = result.camera("calm").unwrap();
        assert!((full.duration_s - 120.0).abs() < 1e-9);
        // Leaving after the scenario already finished is a no-op.
        let noop = two_camera_cluster(2)
            .churn(ChurnPlan::new().leave(10_000.0, "adaptive"))
            .run()
            .unwrap();
        assert_eq!(noop.fleet, two_camera_cluster(2).run().unwrap().fleet);
        assert_eq!(noop.churn.leaves, 1);
    }

    #[test]
    fn drained_accelerators_migrate_residents_without_changing_results() {
        let baseline = two_camera_cluster(2).run().unwrap();
        // Two cameras on two accelerators; accelerator 1 (hosting
        // "adaptive") drains at 50 s → its session snapshot-migrates onto
        // accelerator 0 and finishes there.
        let drained = two_camera_cluster(2).churn(ChurnPlan::new().drain(50.0, 1)).run().unwrap();
        assert_eq!(drained.churn.drains, 1);
        assert_eq!(drained.churn.migrations, 1);
        assert_eq!(drained.churn.orphaned_cameras, 0);
        assert!(drained.churn.migration_stall_s >= 0.0);
        // Sharing is off, so migration must not perturb any camera's
        // numbers: results are bit-identical to the churn-free cluster.
        assert_eq!(drained.fleet, baseline.fleet);
        // Post-migration the survivor accelerator hosts both sessions, so
        // contention appears where the baseline had none.
        assert!(
            drained.contention.max_step_stretch >= baseline.contention.max_step_stretch - 1e-12
        );
    }

    #[test]
    fn draining_every_accelerator_orphans_the_residents() {
        let result = two_camera_cluster(1).churn(ChurnPlan::new().drain(60.0, 0)).run().unwrap();
        assert_eq!(result.churn.drains, 1);
        assert_eq!(result.churn.migrations, 0);
        assert_eq!(result.churn.orphaned_cameras, 2);
        // Orphans report the executed prefix.
        for camera in &result.fleet.cameras {
            assert!(camera.result.duration_s < 120.0 - 1e-9, "{}", camera.camera);
        }
    }

    #[test]
    fn malformed_churn_plans_fail_before_any_simulation() {
        let started = std::time::Instant::now();
        let checks: Vec<(ChurnPlan, &str)> = vec![
            (ChurnPlan::new().leave(f64::NAN, "calm"), "finite"),
            (ChurnPlan::new().leave(-5.0, "calm"), "non-negative"),
            (ChurnPlan::new().leave(10.0, "ghost"), "unknown camera"),
            (ChurnPlan::new().drain(10.0, 7), "accelerator 7"),
            (ChurnPlan::new().drain(10.0, 0).drain(20.0, 0), "drained twice"),
            (
                ChurnPlan::new().join(10.0, "calm", short_config(SchedulerKind::NoAdaptation)),
                "duplicates",
            ),
            (
                ChurnPlan::new()
                    .join(100.0, "late", short_config(SchedulerKind::NoAdaptation))
                    .leave(50.0, "late"),
                "before joining",
            ),
            (ChurnPlan::new().leave(1e22, "calm"), "representable window range"),
        ];
        for (plan, needle) in checks {
            let err = two_camera_cluster(2).churn(plan).run().unwrap_err();
            assert!(err.to_string().contains(needle), "{err}");
        }
        assert!(started.elapsed().as_millis() < 500, "churn validation should fail fast");
    }

    #[test]
    fn displaced_queued_cameras_start_on_idle_survivors_instead_of_vanishing() {
        use crate::sim::test_support::fast_rates;
        use dacapo_datagen::{Scenario, Segment, SegmentAttributes};
        use dacapo_dnn::zoo::ModelPair;

        let config_with_duration = |seconds: f64| {
            let scenario = Scenario::from_segments(
                "churn-len",
                vec![Segment { attributes: SegmentAttributes::default(), duration_s: seconds }],
            );
            SimConfig::builder(scenario, ModelPair::ResNet18Wrn50)
                .platform_rates(fast_rates("churn-test"))
                .scheduler(SchedulerKind::DaCapoSpatiotemporal)
                .measurement(10.0, 10)
                .pretrain_samples(48)
                .build()
                .unwrap()
        };
        // Round-robin over 3 accelerators at capacity 1: cam-0 (long) →
        // accel 0 with cam-3 queued behind it, cam-1/cam-2 (short) finish
        // early on accels 1/2. Draining accel 0 at t=120 then migrates
        // cam-0 onto one idle survivor and must *start* the displaced
        // cam-3 on the other — an idle accelerator never revisits its
        // queue, so merely enqueueing would silently lose the camera.
        let result = Cluster::new(3)
            .capacity_per_accelerator(1)
            .camera("cam-0", config_with_duration(300.0))
            .camera("cam-1", config_with_duration(60.0))
            .camera("cam-2", config_with_duration(60.0))
            .camera("cam-3", config_with_duration(60.0))
            .churn(ChurnPlan::new().drain(120.0, 0))
            .run()
            .unwrap();
        assert_eq!(result.fleet.cameras.len(), 4, "no camera may vanish");
        assert_eq!(result.churn.orphaned_cameras, 0);
        assert_eq!(result.churn.migrations, 1);
        let displaced = result.camera("cam-3").expect("displaced camera ran");
        assert!((displaced.duration_s - 60.0).abs() < 1e-9, "cam-3 ran its whole scenario");
        let migrated = result.camera("cam-0").expect("migrated camera ran");
        assert!((migrated.duration_s - 300.0).abs() < 1e-9);
        // cam-3 waited in a queue exactly once (its initial admission);
        // being re-homed by the drain is not a second wait.
        assert_eq!(result.contention.queued_cameras, 1);
        // The drained accelerator served cam-0 for ~120 s before the
        // barrier, which must show up as non-zero, sane utilization.
        let drained_utilization = result.contention.accelerator_utilization[0];
        assert!(
            drained_utilization > 0.0 && drained_utilization <= 1.0 + 1e-9,
            "drained accelerator utilization {drained_utilization}"
        );
    }

    #[test]
    fn churn_validation_follows_execution_order_not_plan_order() {
        // The leave is *added* before the join but executes after it in
        // virtual time; validation must accept what the barriers would run.
        let plan = ChurnPlan::new().leave(100.0, "late").join(
            30.0,
            "late",
            short_config(SchedulerKind::DaCapoSpatiotemporal),
        );
        let result = two_camera_cluster(2).churn(plan).run().unwrap();
        assert_eq!(result.churn.joins, 1);
        assert_eq!(result.churn.leaves, 1);
        let late = result.camera("late").expect("joined camera reports a result");
        assert!(late.duration_s < 120.0 - 1e-9, "the later leave cut the run short");
    }

    #[test]
    fn churn_composes_with_cross_camera_sharing() {
        let plan =
            ChurnPlan::new().join(40.0, "late", short_config(SchedulerKind::DaCapoSpatiotemporal));
        let result = Cluster::new(1)
            .camera("a", short_config(SchedulerKind::DaCapoSpatiotemporal))
            .camera("b", short_config(SchedulerKind::DaCapoSpatiotemporal))
            .share("broadcast")
            .share_window_s(20.0)
            .churn(plan)
            .run()
            .unwrap();
        assert_eq!(result.churn.joins, 1);
        assert!(result.share.labels_reused > 0, "{:?}", result.share);
        assert_eq!(result.fleet.cameras.len(), 3);
        assert!(result.camera("late").is_some());
    }

    fn edge_camera(scheduler: SchedulerKind, uplink: &str) -> SimConfig {
        let mut config = short_config(scheduler);
        config.edge = Some(crate::edge::EdgeConfig::new(uplink));
        config
    }

    #[test]
    fn unknown_offload_policies_and_edgeless_clusters_fail_before_any_simulation() {
        let started = std::time::Instant::now();
        let err = two_camera_cluster(1).offload("teleport").run().unwrap_err();
        assert!(err.to_string().contains("teleport"), "{err}");
        assert!(two_camera_cluster(1).offload("threshold:bogus").run().is_err());
        assert!(two_camera_cluster(1).offload("budget:0").run().is_err());
        // Any routing policy needs at least one edge-configured camera.
        let err = two_camera_cluster(1).offload("cloud-only").run().unwrap_err();
        assert!(err.to_string().contains("edge tier"), "{err}");
        assert!(started.elapsed().as_millis() < 500, "offload validation should fail fast");
        // A joining edge camera satisfies the requirement even when the
        // initial fleet is edgeless.
        let plan = ChurnPlan::new().join(
            30.0,
            "late",
            edge_camera(SchedulerKind::DaCapoSpatiotemporal, "broadband"),
        );
        let result = two_camera_cluster(2).offload("cloud-only").churn(plan).run().unwrap();
        assert!(result.edge.labels_cloud > 0, "{:?}", result.edge);
    }

    #[test]
    fn local_only_offload_matches_the_default_and_never_ships_bytes() {
        let baseline = two_camera_cluster(1).run().unwrap();
        let explicit = two_camera_cluster(1).offload("local-only").run().unwrap();
        assert_eq!(baseline, explicit);
        assert_eq!(baseline.edge.policy, "local-only");
        assert_eq!(baseline.edge.bytes_shipped, 0);
        // Edge-configured cameras left on the local route are bit-identical
        // to plain ones: the tier only keeps counters.
        let with_tier = Cluster::new(1)
            .camera("calm", edge_camera(SchedulerKind::DaCapoSpatial, "broadband"))
            .camera("adaptive", edge_camera(SchedulerKind::DaCapoSpatiotemporal, "broadband"))
            .run()
            .unwrap();
        assert_eq!(with_tier.fleet, baseline.fleet);
        assert_eq!(with_tier.contention, baseline.contention);
        assert!(with_tier.edge.labels_local > 0, "{:?}", with_tier.edge);
        assert_eq!(with_tier.edge.labels_cloud, 0);
        assert_eq!(with_tier.edge.bytes_shipped, 0);
    }

    #[test]
    fn cloud_only_offload_ships_labels_over_the_uplink() {
        let result = Cluster::new(1)
            .camera("a", edge_camera(SchedulerKind::DaCapoSpatiotemporal, "broadband"))
            .camera("b", edge_camera(SchedulerKind::DaCapoSpatiotemporal, "broadband"))
            .offload("cloud-only")
            .share_window_s(20.0)
            .run()
            .unwrap();
        assert_eq!(result.edge.policy, "cloud-only");
        assert!(result.edge.labels_cloud > 0, "{:?}", result.edge);
        assert!(result.edge.frames_shipped > 0, "{:?}", result.edge);
        assert!(result.edge.bytes_shipped > 0, "{:?}", result.edge);
        assert!(result.edge.cloud_label_latency_p50_s > 0.0, "{:?}", result.edge);
        assert!(
            result.edge.cloud_label_latency_p99_s >= result.edge.cloud_label_latency_p50_s,
            "{:?}",
            result.edge
        );
        assert!(result.edge.accuracy_per_byte > 0.0, "{:?}", result.edge);
    }

    #[test]
    fn offloaded_labeling_bypasses_accelerator_arbitration() {
        // The same camera, local vs. cloud: offloaded labeling accrues no
        // accelerator busy time, so utilization must drop once the labels
        // move to the cloud tier (retraining stays local in both runs).
        let local = Cluster::new(1)
            .camera("solo", edge_camera(SchedulerKind::DaCapoSpatiotemporal, "broadband"))
            .run()
            .unwrap();
        let cloud = Cluster::new(1)
            .camera("solo", edge_camera(SchedulerKind::DaCapoSpatiotemporal, "broadband"))
            .offload("cloud-only")
            .run()
            .unwrap();
        assert!(cloud.edge.labels_cloud > 0, "{:?}", cloud.edge);
        assert!(
            cloud.contention.accelerator_utilization[0]
                < local.contention.accelerator_utilization[0],
            "cloud {} vs local {}",
            cloud.contention.accelerator_utilization[0],
            local.contention.accelerator_utilization[0]
        );
    }

    #[test]
    fn threshold_offload_routes_by_local_queue_depth() {
        let cameras = |cluster: Cluster| {
            cluster
                .camera("a", edge_camera(SchedulerKind::DaCapoSpatiotemporal, "broadband"))
                .camera("b", edge_camera(SchedulerKind::DaCapoSpatiotemporal, "broadband"))
        };
        // Two residents on one accelerator exceed depth 1 → cloud.
        let contended = cameras(Cluster::new(1)).offload("threshold:1").run().unwrap();
        assert!(contended.edge.labels_cloud > 0, "{:?}", contended.edge);
        // One resident each on two accelerators stays local.
        let dedicated = cameras(Cluster::new(2)).offload("threshold:1").run().unwrap();
        assert_eq!(dedicated.edge.labels_cloud, 0, "{:?}", dedicated.edge);
        assert_eq!(dedicated.edge.bytes_shipped, 0);
        assert!(dedicated.edge.labels_local > 0, "{:?}", dedicated.edge);
    }

    #[test]
    fn budget_offload_downgrades_to_local_when_the_window_meter_fills() {
        let build = |offload: &str| {
            Cluster::new(1)
                .camera("solo", edge_camera(SchedulerKind::DaCapoSpatiotemporal, "broadband"))
                .offload(offload)
                .share_window_s(20.0)
                .run()
                .unwrap()
        };
        // Roughly two frames' worth of bytes per 20 s window: the camera
        // ships a little, exhausts the meter, and labels the rest locally.
        let capped = build("budget:150000");
        assert!(capped.edge.labels_cloud > 0, "{:?}", capped.edge);
        assert!(capped.edge.labels_local > 0, "{:?}", capped.edge);
        let unlimited = build("cloud-only");
        assert!(
            capped.edge.bytes_shipped < unlimited.edge.bytes_shipped,
            "capped {} vs unlimited {}",
            capped.edge.bytes_shipped,
            unlimited.edge.bytes_shipped
        );
    }

    #[test]
    fn mixed_fleets_route_only_the_edge_configured_cameras() {
        let result = Cluster::new(1)
            .camera("edge", edge_camera(SchedulerKind::DaCapoSpatiotemporal, "lte"))
            .camera("plain", short_config(SchedulerKind::DaCapoSpatiotemporal))
            .offload("cloud-only")
            .share_window_s(20.0)
            .run()
            .unwrap();
        assert!(result.edge.labels_cloud > 0, "{:?}", result.edge);
        // The plain camera is untouched by routing: its numbers match a
        // solo run of the same configuration under the same contention-free
        // result invariant.
        let solo = crate::ClSimulator::new(short_config(SchedulerKind::DaCapoSpatiotemporal))
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(result.camera("plain").unwrap(), &solo);
    }

    #[test]
    fn thread_count_never_changes_offloaded_cluster_results() {
        let build = || {
            let mut cluster = Cluster::new(2).offload("threshold:1").share_window_s(30.0);
            for i in 0..5 {
                cluster = cluster.camera(
                    format!("cam-{i}"),
                    edge_camera(SchedulerKind::DaCapoSpatiotemporal, "lte"),
                );
            }
            cluster
        };
        let serial = build().threads(1).run().unwrap();
        let parallel = build().threads(8).run().unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn offload_composes_with_sharing_and_churn() {
        let plan = ChurnPlan::new()
            .join(40.0, "late", edge_camera(SchedulerKind::DaCapoSpatiotemporal, "wifi"))
            .leave(80.0, "a");
        let result = Cluster::new(1)
            .camera("a", edge_camera(SchedulerKind::DaCapoSpatiotemporal, "wifi"))
            .camera("b", edge_camera(SchedulerKind::DaCapoSpatiotemporal, "wifi"))
            .share("broadcast")
            .share_window_s(20.0)
            .offload("cloud-only")
            .churn(plan)
            .run()
            .unwrap();
        assert_eq!(result.churn.joins, 1);
        assert_eq!(result.churn.leaves, 1);
        assert!(result.edge.labels_cloud > 0, "{:?}", result.edge);
        // The departed camera's uplink counters survive finalisation at the
        // barrier: three cameras shipped, and every shipped frame is
        // accounted for in the aggregate.
        assert!(result.edge.frames_shipped > 0, "{:?}", result.edge);
        assert!(result.share.labels_exported > 0, "{:?}", result.share);
    }

    #[test]
    fn priority_weights_shape_the_stretch_tail() {
        let result = two_camera_cluster(1).arbiter("priority:3,1").run().unwrap();
        // While both cameras are resident, the weight-1 camera's steps
        // stretch 4x (share 1/4) and the weight-3 camera's 4/3x; once the
        // faster camera finishes the survivor runs unstretched.
        assert!((result.contention.max_step_stretch - 4.0).abs() < 1e-9);
        assert!(result.contention.mean_step_stretch > 1.0);
    }
}
