//! Cluster executor integration: the dedicated-accelerator cluster is
//! bit-identical to `Fleet` (and to solo `Session` runs), contention never
//! changes per-camera numbers, and a 100-camera contended cluster is fully
//! deterministic across runs.

use dacapo_core::platform::{KernelRate, PlatformRates, Sharing};
use dacapo_core::{
    AdmissionPolicy, ClSimulator, Cluster, CoreError, Fleet, SchedulerKind, SimConfig, SimObserver,
};
use dacapo_datagen::{Scenario, Segment, SegmentAttributes};
use dacapo_dnn::zoo::ModelPair;
use proptest::prelude::*;

/// Fast synthetic platform so the many debug-mode simulations stay quick.
fn fast_platform() -> PlatformRates {
    PlatformRates::new(
        "cluster-test",
        KernelRate::fp32(90.0),
        KernelRate::fp32(30.0),
        KernelRate::fp32(100.0),
        Sharing::Partitioned { tsa_rows: 12, bsa_rows: 4 },
        2.0,
    )
    .expect("test rates are valid")
}

/// A short scenario with one label-distribution drift at `drift_s`.
fn drifting_scenario(name: &str, drift_s: f64, total_s: f64) -> Scenario {
    let first = SegmentAttributes::default();
    let second = SegmentAttributes { labels: dacapo_datagen::LabelDistribution::All, ..first };
    Scenario::try_from_segments(
        name.to_string(),
        vec![
            Segment { attributes: first, duration_s: drift_s },
            Segment { attributes: second, duration_s: total_s - drift_s },
        ],
    )
    .expect("drifting test scenario is valid")
}

fn camera_config(seed: u64, duration_s: f64) -> SimConfig {
    SimConfig::builder(
        drifting_scenario("cl", duration_s / 2.0, duration_s),
        ModelPair::ResNet18Wrn50,
    )
    .platform_rates(fast_platform())
    .scheduler(SchedulerKind::DaCapoSpatiotemporal)
    .measurement(10.0, 8)
    .pretrain_samples(48)
    .seed(seed)
    .build()
    .expect("camera config builds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The PR's acceptance property: a cluster with one dedicated
    /// accelerator per camera reproduces `Fleet::run` exactly — same
    /// per-camera `SimResult`s (also equal to solo runs), same aggregates.
    #[test]
    fn dedicated_accelerator_cluster_is_bit_identical_to_fleet(
        cameras in 1usize..4,
        seed in 0u64..1_000_000,
    ) {
        let configs: Vec<(String, SimConfig)> = (0..cameras)
            .map(|i| (format!("cam-{i}"), camera_config(seed.wrapping_add(i as u64), 60.0)))
            .collect();

        let mut fleet = Fleet::new().threads(2);
        let mut cluster = Cluster::new(cameras).threads(2);
        for (name, config) in &configs {
            fleet = fleet.camera(name.clone(), config.clone());
            cluster = cluster.camera(name.clone(), config.clone());
        }
        let fleet_result = fleet.run().expect("fleet runs");
        let cluster_result = cluster.run().expect("cluster runs");
        prop_assert_eq!(&fleet_result, &cluster_result.fleet);
        // No shared accelerator: nothing ever stretches.
        prop_assert!((cluster_result.contention.max_step_stretch - 1.0).abs() < 1e-12);

        for (name, config) in configs {
            let solo = ClSimulator::new(config).unwrap().run().unwrap();
            let from_cluster = cluster_result.camera(&name).expect("camera present");
            prop_assert_eq!(from_cluster, &solo, "{}: cluster diverged from solo run", name);
        }
    }

    /// Contention reshapes the cluster clock but never a camera's numbers:
    /// squeezing the same cameras onto one shared accelerator leaves every
    /// per-camera result (and thus the fleet aggregates) bit-identical.
    #[test]
    fn contention_never_changes_per_camera_results(
        cameras in 2usize..4,
        seed in 0u64..1_000_000,
        arbiter_index in 0usize..3,
    ) {
        let arbiter = ["fair-share", "priority:2,1", "drift-first:3"][arbiter_index];
        let build = |accelerators: usize| {
            let mut cluster = Cluster::new(accelerators).arbiter(arbiter);
            for i in 0..cameras {
                cluster = cluster.camera(
                    format!("cam-{i}"),
                    camera_config(seed.wrapping_add(i as u64), 60.0),
                );
            }
            cluster
        };
        let dedicated = build(cameras).run().expect("dedicated cluster runs");
        let contended = build(1).run().expect("contended cluster runs");
        prop_assert_eq!(&dedicated.fleet, &contended.fleet);
        prop_assert!(
            contended.contention.makespan_s >= dedicated.contention.makespan_s - 1e-9,
            "sharing one accelerator cannot finish earlier than dedicated hardware"
        );
    }
}

/// The ISSUE's determinism criterion: two runs of a 100-camera contended
/// cluster produce identical `ClusterResult`s — metrics, contention
/// telemetry, everything.
#[test]
fn hundred_camera_contended_cluster_is_deterministic() {
    let build = || {
        let mut cluster = Cluster::new(4).arbiter("drift-first:2").threads(4);
        for i in 0..100 {
            cluster =
                cluster.camera(format!("cam-{i:03}"), camera_config(0xDE7E_4215 + i as u64, 20.0));
        }
        cluster
    };
    let first = build().run().expect("first run completes");
    let second = build().run().expect("second run completes");
    assert_eq!(first, second);
    assert_eq!(first.fleet.cameras.len(), 100);
    // 100 cameras round-robin over 4 accelerators: 25 residents each.
    assert_eq!(first.contention.peak_queue_depth, 100);
    assert!(first.contention.p99_step_stretch > 1.0, "a 25-way share must stretch steps");
    // Thread count is irrelevant to the outcome.
    let serial = build().threads(1).run().expect("serial run completes");
    assert_eq!(first, serial);
}

#[test]
fn queued_admission_serialises_overflow_cameras_without_changing_results() {
    let configs: Vec<(String, SimConfig)> =
        (0..3).map(|i| (format!("cam-{i}"), camera_config(0xAD417 + i as u64, 40.0))).collect();
    let build = || {
        let mut cluster = Cluster::new(1);
        for (name, config) in &configs {
            cluster = cluster.camera(name.clone(), config.clone());
        }
        cluster
    };
    let unbounded = build().run().expect("unbounded cluster runs");
    let queued = build()
        .capacity_per_accelerator(1)
        .admission(AdmissionPolicy::Queue)
        .run()
        .expect("queued cluster runs");
    assert_eq!(unbounded.fleet, queued.fleet);
    assert_eq!(queued.contention.queued_cameras, 2);
    // Serialised cameras never contend…
    assert!((queued.contention.max_step_stretch - 1.0).abs() < 1e-12);
    // …and the makespan is the whole back-to-back span.
    let total: f64 = queued.fleet.cameras.iter().map(|c| c.result.duration_s).sum();
    assert!(queued.contention.makespan_s >= total - 1e-6);

    let rejected = build().capacity_per_accelerator(2).admission(AdmissionPolicy::Reject).run();
    match rejected {
        Err(CoreError::AdmissionRejected { camera, .. }) => assert_eq!(camera, "cam-2"),
        other => panic!("expected AdmissionRejected, got {other:?}"),
    }
}

#[test]
fn cluster_observer_sees_every_event_of_every_camera() {
    #[derive(Default)]
    struct Counter {
        phases: usize,
        accuracy: usize,
        drifts: usize,
        finished: usize,
    }
    impl SimObserver for Counter {
        fn on_phase(&mut self, _phase: &dacapo_core::PhaseRecord) {
            self.phases += 1;
        }
        fn on_drift(&mut self, _at_s: f64, _index: usize) {
            self.drifts += 1;
        }
        fn on_accuracy(&mut self, _at_s: f64, _accuracy: f64) {
            self.accuracy += 1;
        }
        fn on_finished(&mut self) {
            self.finished += 1;
        }
    }

    let mut cluster = Cluster::new(2);
    for i in 0..4 {
        cluster = cluster.camera(format!("cam-{i}"), camera_config(0x0B5 + i as u64, 40.0));
    }
    let mut counter = Counter::default();
    let result = cluster.run_with(&mut counter).expect("observed cluster runs");
    let phases: usize = result.fleet.cameras.iter().map(|c| c.result.phases.len()).sum();
    let accuracy: usize =
        result.fleet.cameras.iter().map(|c| c.result.accuracy_timeline.len()).sum();
    assert_eq!(counter.phases, phases);
    assert_eq!(counter.accuracy, accuracy);
    assert_eq!(counter.drifts, result.fleet.total_drift_responses);
    assert_eq!(counter.finished, 4);
}
