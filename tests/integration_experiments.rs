//! Integration tests that check the *shapes* the paper's tables and figures
//! rest on, using the same building blocks as the experiment binaries.

use dacapo_accel::estimator::{spatial_allocation, PrecisionPlan};
use dacapo_accel::gpu::GpuDevice;
use dacapo_accel::power::{PowerModel, TABLE4_AREA_MM2, TABLE4_POWER_W};
use dacapo_accel::{AccelConfig, DaCapoAccelerator};
use dacapo_bench::runner::{run_system, truncate_scenario, SystemUnderTest, FIG9_SYSTEMS};
use dacapo_core::SchedulerKind;
use dacapo_datagen::Scenario;
use dacapo_dnn::workload::{window_workload, ClHyperparams, Kernel};
use dacapo_dnn::zoo::{ModelPair, PaperModel};

#[test]
fn table3_parameters_and_gflops_match_the_paper() {
    for model in PaperModel::ALL {
        let spec = model.spec();
        let params_rel = (spec.params() as f64 / 1e6 - model.table3_params_millions()).abs()
            / model.table3_params_millions();
        let gflops_rel =
            (spec.forward_gflops() - model.table3_gflops()).abs() / model.table3_gflops();
        assert!(params_rel < 0.02, "{model}: params off by {:.1}%", params_rel * 100.0);
        assert!(gflops_rel < 0.06, "{model}: GFLOPs off by {:.1}%", gflops_rel * 100.0);
    }
}

#[test]
fn table4_platform_numbers_match_the_paper() {
    let power = PowerModel::for_config(&AccelConfig::default());
    assert!((power.total_power_w() - TABLE4_POWER_W).abs() < 1e-9);
    assert!((power.total_area_mm2() - TABLE4_AREA_MM2).abs() < 1e-9);
    let orin_high = GpuDevice::jetson_orin_high();
    let orin_low = GpuDevice::jetson_orin_low();
    assert!((orin_high.power_w / power.total_power_w() - 254.0).abs() < 1.0);
    assert!((orin_low.power_w / power.total_power_w() - 127.0).abs() < 1.0);
}

#[test]
fn fig3_retraining_share_rises_with_sampling_rate_and_epochs() {
    for pair in [ModelPair::ResNet18Wrn50, ModelPair::VitB32VitB16] {
        let mut previous_share = 0.0;
        for (rate, epochs) in [(0.03, 3usize), (0.05, 5), (0.10, 10)] {
            let workload = window_workload(
                pair,
                &ClHyperparams {
                    sampling_rate: rate,
                    epochs,
                    window_seconds: 120.0,
                    ..ClHyperparams::default()
                },
            );
            let share = workload.share(Kernel::Retraining);
            assert!(share > previous_share, "{pair}: share did not grow at ({rate}, {epochs})");
            previous_share = share;
        }
        assert!(previous_share > 0.5, "{pair}: retraining should dominate at (10%, 10 epochs)");
    }
}

#[test]
fn fig8_label_distribution_shifts_between_segments() {
    // Consecutive segments with different label distributions must have
    // measurably different class histograms, otherwise the drift the system
    // reacts to would not exist.
    use dacapo_datagen::{FrameStream, StreamConfig, NUM_CLASSES};
    let stream = FrameStream::new(&Scenario::s1(), StreamConfig::default());
    let histogram = |segment: usize| {
        let start = segment as f64 * 60.0;
        let frames = stream.frames_between(start, start + 60.0, 9);
        let mut counts = vec![0.0f64; NUM_CLASSES];
        for frame in &frames {
            counts[frame.sample.true_class] += 1.0;
        }
        let total: f64 = counts.iter().sum();
        counts.into_iter().map(|c| c / total).collect::<Vec<_>>()
    };
    let boundaries = Scenario::s1().drift_boundaries();
    let (first_drift_time, _) = boundaries.first().expect("S1 drifts");
    let before_segment = (first_drift_time / 60.0) as usize - 1;
    let after_segment = (first_drift_time / 60.0) as usize;
    let before = histogram(before_segment);
    let after = histogram(after_segment);
    let l1: f64 = before.iter().zip(after.iter()).map(|(a, b)| (a - b).abs()).sum();
    assert!(l1 > 0.2, "label distributions barely move across the drift (L1 = {l1})");
}

#[test]
fn spatial_allocation_reserves_more_rows_for_heavier_students() {
    let accel = DaCapoAccelerator::new(AccelConfig::default()).unwrap();
    let plan = PrecisionPlan::default();
    let tsa_r18 = spatial_allocation(&accel, ModelPair::ResNet18Wrn50, 30.0, &plan).unwrap();
    let tsa_r34 = spatial_allocation(&accel, ModelPair::ResNet34Wrn101, 30.0, &plan).unwrap();
    let tsa_vit = spatial_allocation(&accel, ModelPair::VitB32VitB16, 30.0, &plan).unwrap();
    // More B-SA rows (fewer T-SA rows) are needed for heavier students.
    assert!(tsa_r18 >= tsa_r34);
    assert!(tsa_r18 >= tsa_vit);
    // But every pair leaves the T-SA a usable share of the array.
    for tsa in [tsa_r18, tsa_r34, tsa_vit] {
        assert!(tsa >= 8, "T-SA starved: only {tsa} rows");
    }
}

#[test]
fn fig9_shape_dacapo_spatiotemporal_beats_the_baselines_on_a_drifting_scenario() {
    // Quick variant of the Figure 9 comparison on one drift-heavy scenario:
    // the full 108-run matrix lives in the fig09_end_to_end binary.
    let scenario = truncate_scenario(&Scenario::s5(), 6);
    let pair = ModelPair::ResNet18Wrn50;
    let accuracy = |label: &str| {
        let system = *FIG9_SYSTEMS.iter().find(|s| s.label == label).unwrap();
        run_system(scenario.clone(), pair, system, true).unwrap().mean_accuracy
    };
    let dacapo_st = accuracy("DaCapo-Spatiotemporal");
    let dacapo_spatial = accuracy("DaCapo-Spatial");
    let orin_low = accuracy("OrinLow-Ekya");
    let orin_high = accuracy("OrinHigh-Ekya");
    assert!(
        dacapo_st >= dacapo_spatial - 0.02,
        "spatiotemporal {dacapo_st:.3} should not trail spatial {dacapo_spatial:.3}"
    );
    assert!(
        dacapo_st > orin_low + 0.01,
        "spatiotemporal {dacapo_st:.3} should clearly beat OrinLow-Ekya {orin_low:.3}"
    );
    assert!(
        dacapo_st >= orin_high - 0.02,
        "spatiotemporal {dacapo_st:.3} should be at least on par with OrinHigh-Ekya {orin_high:.3}"
    );
}

#[test]
fn fig12_shape_dacapo_stays_ahead_under_extreme_drift() {
    let scenario = truncate_scenario(&Scenario::es1(), 6);
    let pair = ModelPair::ResNet18Wrn50;
    let dacapo = run_system(
        scenario.clone(),
        pair,
        SystemUnderTest {
            label: "DaCapo",
            platform: "dacapo",
            scheduler: SchedulerKind::DaCapoSpatiotemporal,
        },
        true,
    )
    .unwrap();
    let ekya = run_system(
        scenario.clone(),
        pair,
        SystemUnderTest { label: "Ekya", platform: "orin-high", scheduler: SchedulerKind::Ekya },
        true,
    )
    .unwrap();
    assert!(
        dacapo.mean_accuracy > ekya.mean_accuracy - 0.01,
        "DaCapo {:.3} should not trail Ekya {:.3} under extreme drift",
        dacapo.mean_accuracy,
        ekya.mean_accuracy
    );
    assert!(dacapo.drift_responses >= 1, "extreme drift must trigger the drift response");
}

#[test]
fn energy_shape_dacapo_uses_two_orders_of_magnitude_less_energy() {
    let scenario = truncate_scenario(&Scenario::s1(), 3);
    let pair = ModelPair::ResNet18Wrn50;
    let dacapo = run_system(
        scenario.clone(),
        pair,
        SystemUnderTest {
            label: "DaCapo",
            platform: "dacapo",
            scheduler: SchedulerKind::DaCapoSpatiotemporal,
        },
        true,
    )
    .unwrap();
    let orin = run_system(
        scenario,
        pair,
        SystemUnderTest {
            label: "OrinHigh",
            platform: "orin-high",
            scheduler: SchedulerKind::Ekya,
        },
        true,
    )
    .unwrap();
    let ratio = orin.energy_joules / dacapo.energy_joules;
    assert!(ratio > 100.0, "energy ratio only {ratio:.0}x");
}
