//! Cross-crate integration tests: end-to-end continuous-learning runs on
//! short drifting scenarios, exercising every scheduler and platform kind.

use dacapo_core::platform::{KernelRate, Sharing};
use dacapo_core::{
    ClSimulator, Hyperparams, PlatformKind, PlatformRates, SchedulerKind, SimConfig, SimResult,
};
use dacapo_datagen::{
    LabelDistribution, Location, Scenario, Segment, SegmentAttributes, TimeOfDay,
};
use dacapo_dnn::zoo::ModelPair;

/// A 3-minute scenario with two drifts (one compound), small enough for debug
/// -mode tests but rich enough to separate the schedulers.
fn test_scenario() -> Scenario {
    let calm = SegmentAttributes::default();
    let shifted = SegmentAttributes { labels: LabelDistribution::All, ..calm };
    let hard = SegmentAttributes {
        labels: LabelDistribution::All,
        time: TimeOfDay::Night,
        location: Location::Highway,
        ..calm
    };
    Scenario::from_segments(
        "integration",
        vec![
            Segment { attributes: calm, duration_s: 60.0 },
            Segment { attributes: shifted, duration_s: 60.0 },
            Segment { attributes: hard, duration_s: 60.0 },
        ],
    )
}

/// Fast synthetic platform so scheduler behaviour (not throughput) dominates.
fn fast_platform() -> PlatformRates {
    PlatformRates::new(
        "test-platform",
        KernelRate::fp32(90.0),
        KernelRate::fp32(30.0),
        KernelRate::fp32(100.0),
        Sharing::Partitioned { tsa_rows: 12, bsa_rows: 4 },
        2.0,
    )
    .expect("test rates are valid")
}

fn run(scheduler: SchedulerKind) -> SimResult {
    let config = SimConfig::builder(test_scenario(), ModelPair::ResNet18Wrn50)
        .platform_rates(fast_platform())
        .scheduler(scheduler)
        .measurement(5.0, 25)
        .pretrain_samples(160)
        .build()
        .expect("valid config");
    ClSimulator::new(config).expect("simulator builds").run().expect("simulation runs")
}

#[test]
fn every_scheduler_completes_and_reports_sane_metrics() {
    for scheduler in SchedulerKind::ALL {
        let result = run(scheduler);
        assert_eq!(result.duration_s, 180.0, "{scheduler}");
        assert!(!result.accuracy_timeline.is_empty(), "{scheduler}");
        assert!(
            result.accuracy_timeline.iter().all(|(_, a)| (0.0..=1.0).contains(a)),
            "{scheduler}: accuracy out of range"
        );
        assert!(result.mean_accuracy > 0.2, "{scheduler}: accuracy {}", result.mean_accuracy);
        let (label, retrain, wait) = result.time_breakdown();
        assert!(
            (label + retrain + wait - result.duration_s).abs() < 2.0,
            "{scheduler}: breakdown does not cover the run"
        );
        assert!((result.energy_joules - 2.0 * 180.0).abs() < 1e-6, "{scheduler}");
    }
}

#[test]
fn continuous_learning_beats_no_adaptation_on_drifting_scenarios() {
    let adaptive = run(SchedulerKind::DaCapoSpatiotemporal);
    let frozen = run(SchedulerKind::NoAdaptation);
    assert!(
        adaptive.mean_accuracy > frozen.mean_accuracy + 0.03,
        "continuous learning ({:.3}) should clearly beat the frozen student ({:.3})",
        adaptive.mean_accuracy,
        frozen.mean_accuracy
    );
}

#[test]
fn spatiotemporal_scheduler_responds_to_drift_and_spatial_does_not() {
    let st = run(SchedulerKind::DaCapoSpatiotemporal);
    let spatial = run(SchedulerKind::DaCapoSpatial);
    assert!(st.drift_responses >= 1, "spatiotemporal should reset the buffer at least once");
    assert_eq!(spatial.drift_responses, 0);
    // The drift-aware policy should not be worse than the fixed-window one on
    // a drift-heavy scenario (allow a small tolerance for stochastic ties).
    assert!(
        st.mean_accuracy >= spatial.mean_accuracy - 0.02,
        "spatiotemporal {:.3} vs spatial {:.3}",
        st.mean_accuracy,
        spatial.mean_accuracy
    );
}

#[test]
fn eomu_retrains_more_often_than_ekya() {
    let eomu = run(SchedulerKind::Eomu);
    let ekya = run(SchedulerKind::Ekya);
    assert!(
        eomu.retrain_count() >= ekya.retrain_count(),
        "EOMU ({}) should retrain at least as often as Ekya ({})",
        eomu.retrain_count(),
        ekya.retrain_count()
    );
}

#[test]
fn runs_are_deterministic_for_equal_seeds_and_differ_across_seeds() {
    let build = |seed: u64| {
        let config = SimConfig::builder(test_scenario(), ModelPair::ResNet18Wrn50)
            .platform_rates(fast_platform())
            .scheduler(SchedulerKind::DaCapoSpatiotemporal)
            .measurement(10.0, 20)
            .pretrain_samples(128)
            .seed(seed)
            .build()
            .unwrap();
        ClSimulator::new(config).unwrap().run().unwrap()
    };
    let a = build(1);
    let b = build(1);
    let c = build(2);
    assert_eq!(a.accuracy_timeline, b.accuracy_timeline);
    assert_eq!(a.phases.len(), b.phases.len());
    assert_ne!(a.accuracy_timeline, c.accuracy_timeline);
}

#[test]
fn real_platform_derivations_run_end_to_end_for_every_kind() {
    // Shorter scenario: platform derivation + MX-quantised training is the
    // slow path, so keep it to one minute.
    let scenario = Scenario::from_segments(
        "short",
        vec![Segment { attributes: SegmentAttributes::default(), duration_s: 60.0 }],
    );
    for kind in PlatformKind::ALL {
        let config = SimConfig::builder(scenario.clone(), ModelPair::ResNet18Wrn50)
            .platform(kind)
            .scheduler(SchedulerKind::DaCapoSpatial)
            .measurement(10.0, 15)
            .pretrain_samples(96)
            .build()
            .expect("platform derives");
        let result = ClSimulator::new(config).expect("builds").run().expect("runs");
        assert!(result.mean_accuracy > 0.1, "{kind:?}");
        assert!(result.power_watts > 0.0, "{kind:?}");
    }
}

#[test]
fn dacapo_platform_consumes_orders_of_magnitude_less_energy_than_orin() {
    let scenario = test_scenario();
    let accel = dacapo_accel::AccelConfig::default();
    let dacapo = PlatformRates::dacapo(ModelPair::ResNet18Wrn50, 30.0, &accel).unwrap();
    let orin =
        PlatformRates::for_kind(PlatformKind::OrinHigh, ModelPair::ResNet18Wrn50, 30.0, &accel)
            .unwrap();
    let duration = scenario.duration_s();
    let ratio = orin.energy_joules(duration) / dacapo.energy_joules(duration);
    assert!((ratio - 254.0).abs() < 3.0, "energy ratio {ratio}");
}

#[test]
fn overloaded_gpu_drops_frames_and_loses_accuracy() {
    // A time-shared device at 40% of the 30 FPS stream's inference demand.
    let slow = PlatformRates::new(
        "slow-gpu",
        KernelRate::fp32(12.0),
        KernelRate::fp32(30.0),
        KernelRate::fp32(100.0),
        Sharing::TimeShared,
        2.0,
    )
    .expect("test rates are valid");
    let config = SimConfig::builder(test_scenario(), ModelPair::ResNet34Wrn101)
        .platform_rates(slow)
        .scheduler(SchedulerKind::Ekya)
        .measurement(10.0, 20)
        .pretrain_samples(128)
        .build()
        .unwrap();
    let result = ClSimulator::new(config).unwrap().run().unwrap();
    assert!(result.frame_drop_rate > 0.5);
    let healthy = run(SchedulerKind::Ekya);
    assert!(
        result.mean_accuracy < healthy.mean_accuracy - 0.2,
        "dropping frames must cost accuracy: {:.3} vs {:.3}",
        result.mean_accuracy,
        healthy.mean_accuracy
    );
}

#[test]
fn drift_label_multiplier_ablation_labels_more_fresh_samples() {
    // Ablation of the N_ldd = 4 * N_l choice: the paper's 4x setting must
    // actually label more samples in its drift responses than a disabled (1x)
    // multiplier, while staying in the same accuracy band. (Which setting is
    // better by a point or two depends on the drift period relative to the
    // labeling time, so the accuracy comparison is deliberately loose — the
    // full sweep lives in the fig11 experiment.)
    let run_with_multiplier = |multiplier: usize| {
        let hyper = Hyperparams { drift_label_multiplier: multiplier, ..Hyperparams::default() };
        let config = SimConfig::builder(test_scenario(), ModelPair::ResNet18Wrn50)
            .platform_rates(fast_platform())
            .scheduler(SchedulerKind::DaCapoSpatiotemporal)
            .hyperparams(hyper)
            .measurement(5.0, 25)
            .pretrain_samples(160)
            .build()
            .unwrap();
        ClSimulator::new(config).unwrap().run().unwrap()
    };
    let drift_labeled = |result: &SimResult| -> usize {
        result.phases.iter().filter(|p| p.drift_response).map(|p| p.samples).sum()
    };
    let paper = run_with_multiplier(4);
    let ablated = run_with_multiplier(1);
    assert!(paper.drift_responses >= 1);
    assert!(
        drift_labeled(&paper) > drift_labeled(&ablated),
        "the 4x multiplier should label more samples in its drift responses ({} vs {})",
        drift_labeled(&paper),
        drift_labeled(&ablated)
    );
    assert!(
        (paper.mean_accuracy - ablated.mean_accuracy).abs() < 0.12,
        "the two settings should stay in the same accuracy band: {:.3} vs {:.3}",
        paper.mean_accuracy,
        ablated.mean_accuracy
    );
}
