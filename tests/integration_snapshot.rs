//! Checkpoint/restore and elastic-membership integration: a session
//! snapshotted at an arbitrary mid-run step (solo or inside a contended
//! cluster) restores bit-identically, churn at window boundaries is
//! invariant across worker-thread counts, and an empty churn plan
//! reproduces the churn-free executor exactly.

use dacapo_core::platform::{KernelRate, PlatformRates, Sharing};
use dacapo_core::{
    ChurnPlan, ClSimulator, Cluster, SchedulerKind, Session, SessionEvent, SessionSnapshot,
    SimConfig,
};
use dacapo_datagen::{Scenario, Segment, SegmentAttributes};
use dacapo_dnn::zoo::ModelPair;
use proptest::prelude::*;

/// Fast synthetic platform so the many debug-mode simulations stay quick.
fn fast_platform() -> PlatformRates {
    PlatformRates::new(
        "snapshot-test",
        KernelRate::fp32(90.0),
        KernelRate::fp32(30.0),
        KernelRate::fp32(100.0),
        Sharing::Partitioned { tsa_rows: 12, bsa_rows: 4 },
        2.0,
    )
    .expect("test rates are valid")
}

/// A short scenario with one label-distribution drift halfway through.
fn drifting_scenario(total_s: f64) -> Scenario {
    let first = SegmentAttributes::default();
    let second = SegmentAttributes { labels: dacapo_datagen::LabelDistribution::All, ..first };
    Scenario::try_from_segments(
        "snap",
        vec![
            Segment { attributes: first, duration_s: total_s / 2.0 },
            Segment { attributes: second, duration_s: total_s / 2.0 },
        ],
    )
    .expect("test scenario is valid")
}

fn camera_config(scheduler: SchedulerKind, seed: u64, duration_s: f64) -> SimConfig {
    SimConfig::builder(drifting_scenario(duration_s), ModelPair::ResNet18Wrn50)
        .platform_rates(fast_platform())
        .scheduler(scheduler)
        .measurement(10.0, 8)
        .pretrain_samples(48)
        .seed(seed)
        .build()
        .expect("camera config builds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The PR's acceptance property (solo half): snapshot at an arbitrary
    /// mid-run step, push the snapshot through its JSON text form, restore,
    /// run to completion — bit-identical to the uninterrupted run.
    #[test]
    fn snapshot_restore_at_any_step_is_bit_identical(
        scheduler_index in 0usize..4,
        interrupt_after in 1usize..40,
        seed in 0u64..1_000_000,
    ) {
        let scheduler = [
            SchedulerKind::DaCapoSpatiotemporal,
            SchedulerKind::DaCapoSpatial,
            SchedulerKind::Ekya,
            SchedulerKind::Eomu,
        ][scheduler_index];
        let config = camera_config(scheduler, seed, 60.0);

        let mut uninterrupted = Session::new(config.clone()).expect("session builds");
        uninterrupted.run_to_end().expect("uninterrupted run completes");
        let expected = uninterrupted.into_result();

        let mut session = Session::new(config).expect("session builds");
        let mut steps = 0usize;
        while steps < interrupt_after && !session.is_finished() {
            let _ = session.step().expect("step succeeds");
            steps += 1;
        }
        let json = session.snapshot().to_json();
        drop(session);
        let snapshot = SessionSnapshot::from_json(&json).expect("snapshot parses back");
        let mut restored = Session::restore(snapshot).expect("snapshot restores");
        restored.run_to_end().expect("restored run completes");
        prop_assert_eq!(
            restored.into_result(),
            expected,
            "restore diverged ({} after {} steps)",
            scheduler,
            steps
        );
    }

    /// The cluster half: a contended cluster whose accelerator drains at a
    /// window boundary (snapshot-migrating its residents) reports per-camera
    /// results bit-identical to the churn-free contended cluster — and both
    /// match solo runs, because arbitration and migration only move cluster
    /// time, never session state.
    #[test]
    fn drain_migration_in_a_contended_cluster_preserves_results(
        seed in 0u64..1_000_000,
        drain_at in 1usize..5,
    ) {
        let cameras = 4usize;
        let build = |plan: ChurnPlan| {
            let mut cluster = Cluster::new(2).share_window_s(15.0).churn(plan);
            for i in 0..cameras {
                cluster = cluster.camera(
                    format!("cam-{i}"),
                    camera_config(
                        SchedulerKind::DaCapoSpatiotemporal,
                        seed.wrapping_add(i as u64),
                        40.0,
                    ),
                );
            }
            cluster
        };
        let baseline = build(ChurnPlan::new()).run().expect("baseline cluster runs");
        let drained = build(ChurnPlan::new().drain(drain_at as f64 * 15.0, 1))
            .run()
            .expect("drained cluster runs");
        prop_assert_eq!(&drained.fleet, &baseline.fleet);
        for i in 0..cameras {
            let name = format!("cam-{i}");
            let solo = ClSimulator::new(camera_config(
                SchedulerKind::DaCapoSpatiotemporal,
                seed.wrapping_add(i as u64),
                40.0,
            ))
            .expect("solo simulator builds")
            .run()
            .expect("solo run completes");
            prop_assert_eq!(drained.camera(&name).expect("camera present"), &solo);
        }
        prop_assert_eq!(drained.churn.drains, 1);
        prop_assert!(drained.churn.migrations <= 2, "at most the residents migrate");
    }

    /// Churn-at-window-boundary runs are bit-identical across 1/2/8 worker
    /// threads: every membership change happens at a single-threaded
    /// barrier, so thread count can only change wall-clock time.
    #[test]
    fn churn_is_invariant_across_worker_thread_counts(
        seed in 0u64..1_000_000,
    ) {
        let build = |threads: usize| {
            let plan = ChurnPlan::new()
                .join(20.0, "late", camera_config(SchedulerKind::DaCapoSpatial, seed ^ 0xFE, 40.0))
                .leave(30.0, "cam-1")
                .drain(45.0, 1);
            let mut cluster = Cluster::new(2).threads(threads).share_window_s(15.0).churn(plan);
            for i in 0..4usize {
                cluster = cluster.camera(
                    format!("cam-{i}"),
                    camera_config(
                        SchedulerKind::DaCapoSpatiotemporal,
                        seed.wrapping_add(i as u64),
                        40.0,
                    ),
                );
            }
            cluster
        };
        let serial = build(1).run().expect("serial churn run completes");
        let two = build(2).run().expect("two-thread churn run completes");
        let eight = build(8).run().expect("eight-thread churn run completes");
        prop_assert_eq!(&serial, &two);
        prop_assert_eq!(&serial, &eight);
        prop_assert_eq!(serial.churn.joins, 1);
        prop_assert_eq!(serial.churn.leaves, 1);
        prop_assert_eq!(serial.churn.drains, 1);
    }
}

/// A cluster with an empty churn plan takes the pre-elasticity code path and
/// reproduces it exactly, with or without contention and sharing.
#[test]
fn empty_churn_plans_reproduce_the_churn_free_executor() {
    let build = || {
        let mut cluster = Cluster::new(2);
        for i in 0..3usize {
            cluster = cluster.camera(
                format!("cam-{i}"),
                camera_config(SchedulerKind::DaCapoSpatiotemporal, 0xE1A5 + i as u64, 40.0),
            );
        }
        cluster
    };
    let bare = build().run().expect("bare cluster runs");
    let empty_plan = build().churn(ChurnPlan::new()).run().expect("empty-plan cluster runs");
    assert_eq!(bare, empty_plan);
    assert_eq!(bare.churn.migrations, 0);
    assert_eq!(bare.churn.peak_residency, 3);

    let shared = build().share("broadcast").share_window_s(20.0).run().expect("shared runs");
    let shared_empty_plan = build()
        .share("broadcast")
        .share_window_s(20.0)
        .churn(ChurnPlan::new())
        .run()
        .expect("shared empty-plan runs");
    assert_eq!(shared, shared_empty_plan);
}

/// A mid-run session inside a contended cluster can be checkpointed through
/// the drain path and the restored continuation matches the uninterrupted
/// session exactly — exercising snapshot() on sessions whose buffers,
/// scheduler state, and teacher RNG are all mid-flight.
#[test]
fn snapshots_taken_mid_drift_recovery_restore_exactly() {
    let config = camera_config(SchedulerKind::DaCapoSpatiotemporal, 0xD21F7, 60.0);
    let mut uninterrupted = Session::new(config.clone()).expect("session builds");
    uninterrupted.run_to_end().expect("run completes");
    let expected = uninterrupted.into_result();

    // Interrupt right after the drift response fires, the gnarliest moment:
    // freshly reset buffer, extended labeling queued, teacher RNG mid-burst.
    let mut session = Session::new(config).expect("session builds");
    loop {
        match session.step().expect("step succeeds") {
            SessionEvent::Drift { .. } => break,
            SessionEvent::Finished => panic!("spatiotemporal short run must hit the drift"),
            _ => {}
        }
    }
    let json = session.snapshot().to_json();
    let mut restored =
        Session::restore(SessionSnapshot::from_json(&json).expect("parses")).expect("restores");
    restored.run_to_end().expect("restored run completes");
    assert_eq!(restored.into_result(), expected);
}
