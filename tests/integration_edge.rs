//! Edge–cloud tier integration: the reserved `local-only` policy is
//! bit-identical to a fleet with no edge tier at all (at any worker-thread
//! count), offloaded clusters are deterministic across thread counts, a
//! session snapshotted mid-window with cloud labels still in flight
//! round-trips through JSON exactly, `EdgeMetrics` survives serde, and the
//! uplink/offload registries resolve builtins and out-of-crate entries
//! alike.

use dacapo_core::edge::{self, OffloadContext, OffloadPolicy, OffloadPolicyFactory};
use dacapo_core::platform::{KernelRate, PlatformRates, Sharing};
use dacapo_core::{
    Cluster, ClusterResult, EdgeConfig, LabelRoute, SchedulerKind, Session, SessionSnapshot,
    SimConfig,
};
use dacapo_datagen::{Scenario, Segment, SegmentAttributes};
use dacapo_dnn::zoo::ModelPair;
use proptest::prelude::*;
use std::sync::Arc;

/// Fast synthetic platform so the many debug-mode simulations stay quick.
fn fast_platform() -> PlatformRates {
    PlatformRates::new(
        "edge-test",
        KernelRate::fp32(90.0),
        KernelRate::fp32(30.0),
        KernelRate::fp32(100.0),
        Sharing::Partitioned { tsa_rows: 12, bsa_rows: 4 },
        2.0,
    )
    .expect("test rates are valid")
}

/// A short scenario with one label-distribution drift halfway through.
fn drifting_scenario(total_s: f64) -> Scenario {
    let first = SegmentAttributes::default();
    let second = SegmentAttributes { labels: dacapo_datagen::LabelDistribution::All, ..first };
    Scenario::try_from_segments(
        "edge",
        vec![
            Segment { attributes: first, duration_s: total_s / 2.0 },
            Segment { attributes: second, duration_s: total_s / 2.0 },
        ],
    )
    .expect("test scenario is valid")
}

/// One camera config, with or without an edge tier on the given uplink.
fn camera_config(seed: u64, duration_s: f64, uplink: Option<&str>) -> SimConfig {
    let mut builder = SimConfig::builder(drifting_scenario(duration_s), ModelPair::ResNet18Wrn50)
        .platform_rates(fast_platform())
        .scheduler(SchedulerKind::DaCapoSpatiotemporal)
        .measurement(10.0, 8)
        .pretrain_samples(48)
        .seed(seed);
    if let Some(uplink) = uplink {
        builder = builder.edge(EdgeConfig::new(uplink));
    }
    builder.build().expect("camera config builds")
}

fn build_cluster(
    cameras: usize,
    seed: u64,
    uplink: Option<&str>,
    offload: &str,
    threads: usize,
) -> Cluster {
    let mut cluster = Cluster::new(2).offload(offload).share_window_s(15.0).threads(threads);
    for i in 0..cameras {
        cluster = cluster
            .camera(format!("cam-{i}"), camera_config(seed.wrapping_add(i as u64), 40.0, uplink));
    }
    cluster
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The ISSUE's bit-identity property: a fleet of edge-tier cameras under
    /// the reserved `local-only` policy produces per-camera results *and*
    /// contention telemetry bit-identical to the same fleet with no edge
    /// tier at all, at any worker-thread count — the tier's presence alone
    /// perturbs nothing.
    #[test]
    fn local_only_is_bit_identical_to_an_edgeless_fleet(
        cameras in 2usize..4,
        seed in 0u64..1_000_000,
        thread_index in 0usize..3,
    ) {
        let threads = [1, 2, 8][thread_index];
        let edgeless = build_cluster(cameras, seed, None, "local-only", threads)
            .run()
            .expect("edgeless cluster runs");
        let local = build_cluster(cameras, seed, Some("lte"), "local-only", threads)
            .run()
            .expect("local-only cluster runs");
        prop_assert_eq!(&edgeless.fleet, &local.fleet);
        prop_assert_eq!(&edgeless.contention, &local.contention);
        // The tier is present and counting, just never shipping.
        prop_assert!(local.edge.labels_local > 0);
        prop_assert_eq!(local.edge.labels_cloud, 0);
        prop_assert_eq!(local.edge.bytes_shipped, 0);
        // The edgeless fleet reports untouched metrics.
        prop_assert_eq!(edgeless.edge.labels_local, 0);
        prop_assert_eq!(edgeless.edge.bytes_shipped, 0);
    }
}

/// The determinism criterion: a contended cloud-offloaded cluster — uplink
/// queueing, deferred label arrival, window routing and all — produces
/// identical `ClusterResult`s at 1, 2, and 8 worker threads.
#[test]
fn offloaded_cluster_is_deterministic_across_thread_counts() {
    let run = |threads: usize| -> ClusterResult {
        build_cluster(4, 0xED6E, Some("lte"), "cloud-only", threads)
            .run()
            .expect("cloud-only cluster runs")
    };
    let serial = run(1);
    assert!(serial.edge.labels_cloud > 0, "cloud-only must ship labels: {:?}", serial.edge);
    assert!(serial.edge.bytes_shipped > 0);
    let two = run(2);
    let eight = run(8);
    assert_eq!(serial, two);
    assert_eq!(serial, eight);
    // And across repeat runs at the same thread count.
    assert_eq!(eight, run(8));
}

/// The checkpoint criterion: snapshot a session mid-window while cloud
/// labels are still in flight on the uplink, push the snapshot through its
/// JSON text form, restore, run to completion — bit-identical to the
/// uninterrupted run. In-flight arrivals and uplink meters all ride the
/// snapshot.
#[test]
fn snapshots_with_in_flight_cloud_labels_round_trip_through_json() {
    let config = camera_config(0xC10D, 60.0, Some("lte"));

    let mut uninterrupted = Session::new(config.clone()).expect("session builds");
    uninterrupted.set_label_route(LabelRoute::Cloud { byte_budget: None }).expect("route sets");
    uninterrupted.run_to_end().expect("uninterrupted run completes");
    let expected = uninterrupted.into_result();

    let mut session = Session::new(config).expect("session builds");
    session.set_label_route(LabelRoute::Cloud { byte_budget: None }).expect("route sets");
    while session.in_flight_cloud_labels() == 0 {
        assert!(!session.is_finished(), "the cloud route must put labels in flight");
        session.step().expect("step succeeds");
    }
    let in_flight = session.in_flight_cloud_labels();
    assert!(in_flight > 0);
    let json = session.snapshot().to_json();
    drop(session);

    let snapshot = SessionSnapshot::from_json(&json).expect("snapshot parses back");
    let mut restored = Session::restore(snapshot).expect("snapshot restores");
    assert_eq!(
        restored.in_flight_cloud_labels(),
        in_flight,
        "in-flight labels must survive the JSON round trip"
    );
    assert_eq!(restored.label_route(), Some(LabelRoute::Cloud { byte_budget: None }));
    restored.run_to_end().expect("restored run completes");
    assert_eq!(restored.into_result(), expected);
}

/// `EdgeMetrics` — latency percentiles, byte meters, accuracy-per-byte —
/// survives a serde JSON round trip unchanged, so `ClusterResult`s with an
/// edge tier persist like any other.
#[test]
fn edge_metrics_survive_a_serde_round_trip() {
    let result = build_cluster(3, 0x5EDE, Some("broadband"), "cloud-only", 2)
        .run()
        .expect("cloud-only cluster runs");
    assert!(result.edge.bytes_shipped > 0);
    assert!(result.edge.accuracy_per_byte > 0.0);
    let json = serde_json::to_string(&result.edge).expect("metrics serialise");
    let back: dacapo_core::EdgeMetrics = serde_json::from_str(&json).expect("metrics parse back");
    assert_eq!(back, result.edge);
}

/// Out-of-crate offload policies resolve through the registry by name,
/// exactly like builtins, and the uplink registry resolves every builtin
/// profile with and without parameter overrides.
#[test]
fn registries_resolve_builtins_and_out_of_crate_policies() {
    struct EvenWindows;
    impl OffloadPolicy for EvenWindows {
        fn name(&self) -> String {
            "even-windows".to_string()
        }
        fn route(&mut self, ctx: &OffloadContext<'_>) -> LabelRoute {
            if ctx.window_index.is_multiple_of(2) {
                LabelRoute::Cloud { byte_budget: None }
            } else {
                LabelRoute::Local
            }
        }
    }
    struct EvenWindowsFactory;
    impl OffloadPolicyFactory for EvenWindowsFactory {
        fn name(&self) -> &str {
            "even-windows"
        }
        fn build(&self, _params: Option<&str>) -> dacapo_core::Result<Box<dyn OffloadPolicy>> {
            Ok(Box::new(EvenWindows))
        }
    }
    edge::register_offload(Arc::new(EvenWindowsFactory));
    assert!(edge::offload_by_name("even-windows").is_some());
    assert!(edge::offload_by_name("EVEN-WINDOWS").is_some(), "lookups are case-insensitive");
    assert!(edge::registered_offload_policies().contains(&"even-windows".to_string()));
    for builtin in ["local-only", "cloud-only", "threshold", "budget"] {
        assert!(edge::offload_by_name(builtin).is_some(), "{builtin} missing");
    }

    // And the registered policy drives a real cluster run end to end.
    let result = build_cluster(2, 0xE7E4, Some("wifi"), "even-windows", 2)
        .run()
        .expect("even-windows cluster runs");
    assert!(result.edge.labels_cloud > 0, "window 0 routes cloud: {:?}", result.edge);
    assert_eq!(result.edge.policy, "even-windows");

    // The builtin uplink profiles resolve, with parameter overrides.
    for builtin in ["broadband", "wifi", "lte", "degraded"] {
        assert!(edge::uplink_by_name(builtin).is_some(), "{builtin} missing");
    }
    let default_lte = edge::create_uplink("lte").expect("lte resolves");
    assert!((default_lte.bandwidth_bps() - 12e6).abs() < 1e-6);
    let tuned = edge::create_uplink("lte:6,120").expect("parametrised lte resolves");
    assert!((tuned.bandwidth_bps() - 6e6).abs() < 1e-6);
    assert!((tuned.latency_s() - 0.12).abs() < 1e-9);
    assert!(edge::create_uplink("carrier-pigeon").is_err());
}
