//! Serde round-trips of the public result/config surface: `SimConfig`,
//! `PlatformSpec`, `SimResult`, `FleetResult`, and `ClusterResult` all
//! survive a JSON text round trip exactly, so observer logs, bench records,
//! and snapshots written by one process can be read back by another.

use dacapo_core::platform::{KernelRate, PlatformSpec, Sharing};
use dacapo_core::{
    Cluster, FleetResult, PhaseKind, PhaseRecord, PlatformKind, PlatformRates, SchedulerKind,
    SessionEvent, ShareMetrics, SimConfig, SimResult,
};
use dacapo_datagen::Scenario;
use dacapo_dnn::zoo::ModelPair;
use proptest::prelude::*;
use serde::{Deserialize, Serialize};

/// JSON-text round trip: serialise, parse, compare.
fn round_trip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(value: &T) {
    let compact = serde_json::to_string(value).expect("serialises");
    let reparsed: T = serde_json::from_str(&compact).expect("parses back");
    assert_eq!(&reparsed, value, "compact JSON round trip changed the value");
    let pretty = serde_json::to_string_pretty(value).expect("serialises pretty");
    let reparsed: T = serde_json::from_str(&pretty).expect("parses back pretty");
    assert_eq!(&reparsed, value, "pretty JSON round trip changed the value");
}

/// A value in (0, 1] derived from raw bits, guaranteed finite.
fn unit(bits: u64) -> f64 {
    ((bits % 1000) as f64 + 1.0) / 1000.0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `SimConfig` round-trips across scenario, scheduler, platform, and
    /// seed choices (builtin kinds, registry names, and explicit rates).
    #[test]
    fn sim_config_round_trips(
        scenario_index in 0usize..8,
        scheduler_index in 0usize..5,
        platform_choice in 0usize..6,
        seed in 0u64..u64::MAX,
    ) {
        let scenario = Scenario::all()[scenario_index].clone();
        let scheduler = SchedulerKind::BUILTINS[scheduler_index];
        let mut builder = SimConfig::builder(scenario, ModelPair::ResNet18Wrn50)
            .scheduler(scheduler)
            .seed(seed);
        builder = match platform_choice {
            0 => builder.platform(PlatformKind::DaCapo),
            1 => builder.platform(PlatformKind::OrinHigh),
            2 => builder.platform("orin-dvfs:45"),
            3 => builder.platform("scaled-dacapo:32"),
            4 => builder.platform("rtx-3090"),
            _ => builder.platform_rates(
                PlatformRates::new(
                    "custom",
                    KernelRate::fp32(unit(seed) * 200.0),
                    KernelRate::fp32(unit(seed ^ 1) * 50.0),
                    KernelRate::fp32(unit(seed ^ 2) * 150.0),
                    Sharing::TimeShared,
                    unit(seed ^ 3) * 10.0,
                )
                .expect("generated rates are valid"),
            ),
        };
        let config = builder.build().expect("config builds");
        round_trip(&config);
        // The reparsed config still resolves to the same capability sheet.
        let reparsed: SimConfig =
            serde_json::from_str(&serde_json::to_string(&config).expect("serialises"))
                .expect("parses");
        prop_assert_eq!(
            reparsed.platform_rates().expect("reparsed platform resolves"),
            config.platform_rates().expect("platform resolves")
        );
    }

    /// `PlatformSpec` round-trips in all three forms.
    #[test]
    fn platform_spec_round_trips(choice in 0usize..5, bits in 0u64..u64::MAX) {
        let spec = match choice {
            0 => PlatformSpec::Kind(PlatformKind::ALL[(bits % 4) as usize]),
            1 => PlatformSpec::Named("orin-dvfs:42".to_string()),
            2 => PlatformSpec::Named("some-unregistered-platform".to_string()),
            3 => PlatformSpec::Named(format!("scaled-dacapo:{}", 2 + bits % 64)),
            _ => PlatformSpec::Rates(
                PlatformRates::new(
                    "spec-rt",
                    KernelRate::fp32(unit(bits) * 300.0),
                    KernelRate::fp32(unit(bits ^ 5) * 60.0),
                    KernelRate::fp32(unit(bits ^ 6) * 80.0),
                    Sharing::Partitioned {
                        tsa_rows: 1 + (bits % 15) as usize,
                        bsa_rows: 1 + (bits % 7) as usize,
                    },
                    unit(bits ^ 7),
                )
                .expect("generated rates are valid"),
            ),
        };
        round_trip(&spec);
    }

    /// Synthetic `SimResult`s (finite values, arbitrary shapes) and the
    /// `FleetResult` aggregating them round-trip exactly.
    #[test]
    fn sim_and_fleet_results_round_trip(
        timeline_len in 0usize..20,
        phase_count in 0usize..12,
        bits in 0u64..u64::MAX,
    ) {
        let timeline: Vec<(f64, f64)> = (0..timeline_len)
            .map(|i| (i as f64 * 5.0, unit(bits.wrapping_add(i as u64))))
            .collect();
        let phases: Vec<PhaseRecord> = (0..phase_count)
            .map(|i| PhaseRecord {
                kind: [PhaseKind::Label, PhaseKind::Retrain, PhaseKind::Wait][i % 3],
                start_s: i as f64 * 7.5,
                duration_s: unit(bits ^ i as u64) * 30.0,
                samples: (bits.wrapping_mul(i as u64 + 1) % 512) as usize,
                drift_response: i % 4 == 0,
            })
            .collect();
        let result = SimResult {
            system: "test / sched".to_string(),
            scenario: "S1".to_string(),
            pair: ModelPair::ResNet18Wrn50,
            scheduler: "DaCapo-Spatiotemporal".to_string(),
            mean_accuracy: unit(bits ^ 0xA),
            accuracy_timeline: timeline,
            frame_drop_rate: unit(bits ^ 0xB) - 0.001,
            energy_joules: unit(bits ^ 0xC) * 1e4,
            power_watts: unit(bits ^ 0xD) * 60.0,
            phases,
            drift_responses: (bits % 9) as usize,
            duration_s: 1200.0,
        };
        round_trip(&result);

        // A populated fleet aggregate over per-camera copies round-trips
        // too (camera names exercise string escaping).
        let cameras: Vec<dacapo_core::CameraResult> = (0..3)
            .map(|i| dacapo_core::CameraResult {
                camera: format!("cam \"{i}\"\t✓"),
                result: result.clone(),
            })
            .collect();
        let fleet = FleetResult {
            mean_accuracy: result.mean_accuracy,
            p50_accuracy: result.mean_accuracy,
            p10_accuracy: result.mean_accuracy,
            min_accuracy: result.mean_accuracy,
            total_energy_joules: result.energy_joules * 3.0,
            aggregate_drop_rate: result.frame_drop_rate,
            total_drift_responses: result.drift_responses * 3,
            cameras,
        };
        round_trip(&fleet);
    }
}

/// A real (short) cluster run's `ClusterResult` — fleet, contention, share,
/// and churn telemetry together — survives the JSON round trip, which is
/// exactly what the bench records and CI artifacts rely on.
#[test]
fn cluster_results_from_a_real_run_round_trip() {
    let config = SimConfig::builder(
        Scenario::try_from_segments(
            "rt",
            vec![dacapo_datagen::Segment {
                attributes: dacapo_datagen::SegmentAttributes::default(),
                duration_s: 30.0,
            }],
        )
        .expect("scenario is valid"),
        ModelPair::ResNet18Wrn50,
    )
    .platform_rates(
        PlatformRates::new(
            "rt-chip",
            KernelRate::fp32(90.0),
            KernelRate::fp32(30.0),
            KernelRate::fp32(100.0),
            Sharing::Partitioned { tsa_rows: 12, bsa_rows: 4 },
            2.0,
        )
        .expect("rates are valid"),
    )
    .scheduler(SchedulerKind::DaCapoSpatiotemporal)
    .measurement(10.0, 8)
    .pretrain_samples(48)
    .build()
    .expect("config builds");

    let result = Cluster::new(1)
        .camera("a", config.clone())
        .camera("b", config)
        .share("broadcast")
        .share_window_s(10.0)
        .run()
        .expect("cluster runs");
    round_trip(&result);
    round_trip(&result.fleet);
    round_trip(&result.contention);
    round_trip(&result.share);
    round_trip(&result.churn);
}

/// The event/record types that used to be write-only now read back:
/// `SessionEvent` in every variant, plus `ShareMetrics` and a standalone
/// `FleetResult`.
#[test]
fn session_events_and_metrics_round_trip() {
    let events = [
        SessionEvent::Phase(PhaseRecord {
            kind: PhaseKind::Retrain,
            start_s: 12.5,
            duration_s: 3.25,
            samples: 384,
            drift_response: false,
        }),
        SessionEvent::Drift { at_s: 61.0, response_index: 2 },
        SessionEvent::Accuracy { at_s: 65.0, accuracy: 0.8125 },
        SessionEvent::Finished,
    ];
    for event in &events {
        round_trip(event);
    }

    let metrics = ShareMetrics {
        policy: "correlated:0.6".to_string(),
        window_s: 60.0,
        windows: 20,
        labels_exported: 5000,
        labels_reused: 1250,
        labeling_seconds_saved: 312.5,
        import_rejects: 7,
    };
    round_trip(&metrics);

    let empty = FleetResult {
        cameras: Vec::new(),
        mean_accuracy: 0.0,
        p50_accuracy: 0.0,
        p10_accuracy: 0.0,
        min_accuracy: 0.0,
        total_energy_joules: 0.0,
        aggregate_drop_rate: 0.0,
        total_drift_responses: 0,
    };
    round_trip(&empty);
}
