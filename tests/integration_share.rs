//! Cross-camera sharing integration: a policy that admits nothing is
//! bit-identical to a `none` fleet, shared runs are deterministic at any
//! worker-thread count, and a `correlated` cluster on an overlapping
//! `FleetScenario` actually reuses labels (saving labeling seconds) while
//! rejecting uncorrelated peers.

use dacapo_core::platform::{KernelRate, PlatformRates, Sharing};
use dacapo_core::share::{self, ShareContext, SharePolicy, SharePolicyFactory};
use dacapo_core::{Cluster, ClusterResult, SchedulerKind, SimConfig};
use dacapo_datagen::{FleetScenario, Scenario};
use dacapo_dnn::zoo::ModelPair;
use proptest::prelude::*;
use std::sync::Arc;

/// Fast synthetic platform so the many debug-mode simulations stay quick.
fn fast_platform() -> PlatformRates {
    PlatformRates::new(
        "share-test",
        KernelRate::fp32(90.0),
        KernelRate::fp32(30.0),
        KernelRate::fp32(100.0),
        Sharing::Partitioned { tsa_rows: 12, bsa_rows: 4 },
        2.0,
    )
    .expect("test rates are valid")
}

/// A fleet of camera configs derived from a truncated base scenario with the
/// given attribute overlap and per-camera drift offsets.
fn fleet_configs(
    cameras: usize,
    overlap: f64,
    offset_step_s: f64,
    seed: u64,
) -> Vec<(String, SimConfig)> {
    let base = Scenario::try_from_segments(
        "base",
        Scenario::es1().segments().iter().copied().take(2).collect(),
    )
    .expect("the truncated base scenario is valid");
    let scenarios = FleetScenario::new(base, cameras)
        .overlap(overlap)
        .offset_step_s(offset_step_s)
        .seed(seed)
        .derive()
        .expect("fleet derivation succeeds");
    scenarios
        .into_iter()
        .enumerate()
        .map(|(i, scenario)| {
            let config = SimConfig::builder(scenario, ModelPair::ResNet18Wrn50)
                .platform_rates(fast_platform())
                .scheduler(SchedulerKind::DaCapoSpatiotemporal)
                .measurement(10.0, 8)
                .pretrain_samples(48)
                .seed(seed.wrapping_add(i as u64))
                .build()
                .expect("camera config builds");
            (format!("cam-{i}"), config)
        })
        .collect()
}

fn build_cluster(configs: &[(String, SimConfig)], accelerators: usize, share: &str) -> Cluster {
    let mut cluster = Cluster::new(accelerators).share(share).share_window_s(20.0);
    for (name, config) in configs {
        cluster = cluster.camera(name.clone(), config.clone());
    }
    cluster
}

/// A registered out-of-crate policy that goes through the full windowed
/// exchange machinery but never admits anything.
fn register_zero_admit() {
    struct ZeroAdmit;
    impl SharePolicy for ZeroAdmit {
        fn name(&self) -> String {
            "zero-admit".to_string()
        }
        fn admit_fraction(&mut self, _ctx: &ShareContext<'_>) -> f64 {
            0.0
        }
    }
    struct ZeroAdmitFactory;
    impl SharePolicyFactory for ZeroAdmitFactory {
        fn name(&self) -> &str {
            "zero-admit"
        }
        fn build(&self, _params: Option<&str>) -> dacapo_core::Result<Box<dyn SharePolicy>> {
            Ok(Box::new(ZeroAdmit))
        }
    }
    share::register(Arc::new(ZeroAdmitFactory));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The ISSUE's bit-identity property: any registered share policy that
    /// admits zero imports produces per-camera results *and* contention
    /// telemetry bit-identical to a `none` fleet — the windowed executor
    /// itself perturbs nothing.
    #[test]
    fn zero_admitted_imports_are_bit_identical_to_a_none_fleet(
        cameras in 2usize..4,
        seed in 0u64..1_000_000,
        overlap_percent in 0usize..101,
    ) {
        register_zero_admit();
        let configs = fleet_configs(cameras, overlap_percent as f64 / 100.0, 15.0, seed);
        let none = build_cluster(&configs, 1, "none").run().expect("none cluster runs");
        let zero = build_cluster(&configs, 1, "zero-admit").run().expect("zero-admit runs");
        prop_assert_eq!(&none.fleet, &zero.fleet);
        prop_assert_eq!(&none.contention, &zero.contention);
        prop_assert_eq!(zero.share.labels_reused, 0);
        prop_assert_eq!(zero.share.labeling_seconds_saved, 0.0);
        // The windowed path really ran: exports were offered and declined.
        prop_assert!(zero.share.windows >= 1);
        prop_assert!(zero.share.labels_exported > 0);
        prop_assert!(zero.share.import_rejects > 0);
        // `none` itself reports untouched metrics.
        prop_assert_eq!(none.share.windows, 0);
        prop_assert_eq!(none.share.labels_exported, 0);
    }
}

/// The ISSUE's determinism criterion: a contended `broadcast` cluster —
/// exports, barriers, imports and all — produces identical `ClusterResult`s
/// at 1, 2, and 8 worker threads.
#[test]
fn broadcast_cluster_is_deterministic_across_thread_counts() {
    let configs = fleet_configs(8, 0.7, 15.0, 0xEC40);
    let run = |threads: usize| -> ClusterResult {
        build_cluster(&configs, 4, "broadcast")
            .threads(threads)
            .run()
            .expect("broadcast cluster runs")
    };
    let serial = run(1);
    assert!(serial.share.labels_reused > 0, "broadcast must reuse labels: {:?}", serial.share);
    let two = run(2);
    let eight = run(8);
    assert_eq!(serial, two);
    assert_eq!(serial, eight);
    // And across repeat runs at the same thread count.
    assert_eq!(eight, run(8));
}

/// The acceptance headline: a `correlated` cluster on an overlapping
/// `FleetScenario` reports nonzero label reuse and labeling seconds saved,
/// while the same fleet under `none` saves nothing.
#[test]
fn correlated_fleets_reuse_labels_and_save_labeling_time() {
    // High overlap, small offsets: every camera pair clears the threshold.
    let overlapping = fleet_configs(4, 1.0, 10.0, 0xC0FE);
    let shared = build_cluster(&overlapping, 2, "correlated:0.6").run().unwrap();
    assert!(shared.share.labels_reused > 0, "{:?}", shared.share);
    assert!(shared.share.labeling_seconds_saved > 0.0, "{:?}", shared.share);
    assert_eq!(shared.share.policy, "correlated:0.6");

    let none = build_cluster(&overlapping, 2, "none").run().unwrap();
    assert_eq!(none.share.labels_reused, 0);
    assert_eq!(none.share.labeling_seconds_saved, 0.0);
    assert!(
        shared.share.labeling_seconds_saved > none.share.labeling_seconds_saved,
        "sharing must save labeling time over a none fleet"
    );

    // Imports land in buffers, so camera results legitimately move; the
    // cluster still reports a full fleet.
    assert_eq!(shared.fleet.cameras.len(), 4);

    // A decorrelated fleet under a strict threshold admits nothing: every
    // offer is rejected.
    let disjoint = fleet_configs(4, 0.0, 10.0, 0xC0FE);
    let strict = build_cluster(&disjoint, 2, "correlated:0.99").run().unwrap();
    assert_eq!(strict.share.labels_reused, 0, "{:?}", strict.share);
    assert!(strict.share.import_rejects > 0, "{:?}", strict.share);
    // Zero admissions ⇒ bit-identical to the none fleet, per the property
    // above — spot-check it holds on this concrete pair too.
    let disjoint_none = build_cluster(&disjoint, 2, "none").run().unwrap();
    assert_eq!(strict.fleet, disjoint_none.fleet);
    assert_eq!(strict.contention, disjoint_none.contention);
}

/// A window far smaller than any phase forces long event-free stretches
/// between exchanges; the executor jumps over them (absolute window
/// boundaries), and the zero-admit bit-identity must survive the skipping.
#[test]
fn tiny_windows_skip_empty_rounds_without_changing_results() {
    register_zero_admit();
    let configs = fleet_configs(2, 1.0, 0.0, 0x71AF);
    let none = build_cluster(&configs, 1, "none").run().expect("none cluster runs");
    let tiny = {
        let mut cluster = Cluster::new(1).share("zero-admit").share_window_s(0.01).threads(2);
        for (name, config) in &configs {
            cluster = cluster.camera(name.clone(), config.clone());
        }
        cluster.run().expect("tiny-window cluster runs")
    };
    assert_eq!(none.fleet, tiny.fleet);
    assert_eq!(none.contention, tiny.contention);
    // Window indices stay absolute: the last boundary covers the makespan.
    assert!(tiny.share.windows as f64 * 0.01 >= tiny.contention.makespan_s - 0.01);
}

/// Out-of-crate policies resolve through the registry by name, exactly like
/// builtins (the `zero-admit` policy used by the proptest above, plus
/// `share::by_name` lookups).
#[test]
fn out_of_crate_policies_resolve_through_the_registry() {
    register_zero_admit();
    assert!(share::by_name("zero-admit").is_some());
    assert!(share::by_name("ZERO-ADMIT").is_some(), "lookups are case-insensitive");
    assert!(share::registered_names().contains(&"zero-admit".to_string()));
    // And the builtin set is intact alongside it.
    for builtin in ["none", "broadcast", "correlated"] {
        assert!(share::by_name(builtin).is_some(), "{builtin} missing");
    }
}
