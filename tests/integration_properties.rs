//! Cross-crate property-based tests: invariants of the allocators, buffer,
//! schedulers, and simulator that must hold for arbitrary (bounded) inputs.

use dacapo_accel::estimator::{estimate, PrecisionPlan};
use dacapo_accel::gpu::GpuDevice;
use dacapo_accel::{AccelConfig, DaCapoAccelerator};
use dacapo_core::platform::{KernelRate, Sharing};
use dacapo_core::sched::{Action, SchedulerContext};
use dacapo_core::{
    ClSimulator, Hyperparams, LabeledSample, PlatformKind, PlatformRates, PlatformSpec,
    SampleBuffer, SchedulerKind, Session, SessionEvent, SimConfig,
};
use dacapo_datagen::{
    LabelDistribution, Location, Scenario, Segment, SegmentAttributes, TimeOfDay, Weather,
};
use dacapo_dnn::zoo::ModelPair;
use proptest::prelude::*;

fn arbitrary_attributes() -> impl Strategy<Value = SegmentAttributes> {
    (any::<bool>(), any::<bool>(), any::<bool>(), 0u8..4).prop_map(
        |(labels, night, highway, weather)| SegmentAttributes {
            labels: if labels { LabelDistribution::All } else { LabelDistribution::TrafficOnly },
            time: if night { TimeOfDay::Night } else { TimeOfDay::Daytime },
            location: if highway { Location::Highway } else { Location::City },
            weather: match weather {
                0 => Weather::Clear,
                1 => Weather::Overcast,
                2 => Weather::Snowy,
                _ => Weather::Rainy,
            },
        },
    )
}

fn arbitrary_scenario() -> impl Strategy<Value = Scenario> {
    prop::collection::vec((arbitrary_attributes(), 20.0f64..60.0), 1..5).prop_map(|segments| {
        Scenario::from_segments(
            "prop",
            segments
                .into_iter()
                .map(|(attributes, duration_s)| Segment { attributes, duration_s })
                .collect(),
        )
    })
}

fn fast_platform() -> PlatformRates {
    PlatformRates::new(
        "prop-platform",
        KernelRate::fp32(60.0),
        KernelRate::fp32(50.0),
        KernelRate::fp32(200.0),
        Sharing::Partitioned { tsa_rows: 8, bsa_rows: 8 },
        1.0,
    )
    .expect("test rates are valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any T-SA/B-SA split of the array yields positive throughput for every
    /// kernel and preserves the row total.
    #[test]
    fn any_partition_gives_positive_kernel_throughput(tsa_rows in 1usize..16) {
        let accel = DaCapoAccelerator::new(AccelConfig::default()).unwrap();
        let plan = PrecisionPlan::default();
        for pair in ModelPair::ALL {
            let est = estimate(&accel, pair, tsa_rows, 16, &plan).unwrap();
            prop_assert_eq!(est.tsa_rows + est.bsa_rows, 16);
            prop_assert!(est.inference_fps > 0.0);
            prop_assert!(est.labeling_samples_per_s > 0.0);
            prop_assert!(est.retraining_samples_per_s > 0.0);
        }
    }

    /// The sample buffer never exceeds its capacity and always keeps the most
    /// recent samples.
    #[test]
    fn buffer_capacity_invariant(capacity in 1usize..64, pushes in 1usize..200) {
        let mut buffer = SampleBuffer::new(capacity);
        for i in 0..pushes {
            buffer.push(LabeledSample {
                features: vec![0.0; 4],
                teacher_label: 0,
                true_class: 0,
                timestamp_s: i as f64,
            });
            prop_assert!(buffer.len() <= capacity);
        }
        prop_assert_eq!(buffer.len(), pushes.min(capacity));
        let newest = buffer.samples().last().unwrap().timestamp_s;
        prop_assert_eq!(newest, (pushes - 1) as f64);
    }

    /// Buffer draws never exceed the requested sizes, never overlap, and
    /// never invent samples.
    #[test]
    fn buffer_draw_invariants(
        capacity in 4usize..128,
        fill in 1usize..128,
        train in 1usize..96,
        validation in 1usize..32,
        seed in 0u64..1000,
    ) {
        let mut buffer = SampleBuffer::new(capacity);
        for i in 0..fill {
            buffer.push(LabeledSample {
                features: vec![i as f32],
                teacher_label: i % 3,
                true_class: i % 3,
                timestamp_s: i as f64,
            });
        }
        let (train_set, val_set) = buffer.draw(train, validation, seed);
        prop_assert!(train_set.len() <= train);
        prop_assert!(val_set.len() <= validation.max(buffer.len()));
        prop_assert!(train_set.len() + val_set.len() <= buffer.len());
        for t in &train_set {
            prop_assert!(!val_set.iter().any(|v| v.timestamp_s == t.timestamp_s));
        }
    }

    /// Every scheduler only ever returns well-formed actions: positive sample
    /// counts, positive waits, and buffer resets only from drift-aware
    /// policies.
    #[test]
    fn schedulers_return_well_formed_actions(
        buffer_len in 0usize..600,
        acc_v in prop::option::of(0.0f64..1.0),
        acc_l in prop::option::of(0.0f64..1.0),
        steps in 1usize..30,
    ) {
        let hyper = Hyperparams::default();
        for kind in [
            SchedulerKind::DaCapoSpatiotemporal,
            SchedulerKind::DaCapoSpatial,
            SchedulerKind::Ekya,
            SchedulerKind::Eomu,
            SchedulerKind::NoAdaptation,
        ] {
            let mut scheduler = kind.create(&hyper);
            let mut now = 0.0;
            for _ in 0..steps {
                let action = scheduler.next_action(&SchedulerContext {
                    now_s: now,
                    buffer_len,
                    buffer_capacity: hyper.buffer_capacity,
                    last_validation_accuracy: acc_v,
                    last_labeling_accuracy: acc_l,
                });
                match action {
                    Action::Label { samples, reset_buffer } => {
                        prop_assert!(samples > 0, "{kind}: zero-sample labeling");
                        if reset_buffer {
                            prop_assert!(kind.drift_aware(), "{kind} reset the buffer");
                        }
                    }
                    Action::Retrain { samples, epochs } => {
                        prop_assert!(samples > 0 && epochs > 0, "{kind}: empty retraining");
                    }
                    Action::Wait { seconds } => prop_assert!(seconds > 0.0, "{kind}: non-positive wait"),
                }
                now += 3.0;
            }
        }
    }

    /// For arbitrary short scenarios the simulator produces a monotone
    /// timeline of in-range accuracies, covers the full duration with phases,
    /// and conserves energy accounting.
    #[test]
    fn simulator_invariants_hold_for_arbitrary_scenarios(
        scenario in arbitrary_scenario(),
        scheduler_index in 0usize..4,
    ) {
        let scheduler = SchedulerKind::ALL[scheduler_index];
        let config = SimConfig::builder(scenario, ModelPair::ResNet18Wrn50)
            .platform_rates(fast_platform())
            .scheduler(scheduler)
            .measurement(10.0, 10)
            .pretrain_samples(64)
            .build()
            .unwrap();
        let duration = config.scenario.duration_s();
        let result = ClSimulator::new(config).unwrap().run().unwrap();

        prop_assert!((result.duration_s - duration).abs() < 1e-9);
        let mut previous_time = -1.0;
        for &(t, accuracy) in &result.accuracy_timeline {
            prop_assert!(t > previous_time, "timeline not monotone");
            prop_assert!((0.0..=1.0).contains(&accuracy));
            previous_time = t;
        }
        let (label, retrain, wait) = result.time_breakdown();
        prop_assert!(label >= 0.0 && retrain >= 0.0 && wait >= 0.0);
        prop_assert!(label + retrain + wait <= duration + 2.0);
        prop_assert!((result.energy_joules - duration).abs() < 1e-6); // 1 W platform
    }

    /// Registry resolution never changes the numbers: for every builtin
    /// platform kind and a range of frame rates, a registry-resolved
    /// `PlatformSpec` (by kind *and* by name) produces rates bit-identical
    /// to the direct constructors (`PlatformRates::dacapo` / `::gpu`).
    #[test]
    fn spec_resolution_matches_direct_constructors(
        kind_index in 0usize..4,
        fps in 10.0f64..60.0,
    ) {
        let kind = PlatformKind::ALL[kind_index];
        let pair = ModelPair::ResNet18Wrn50;
        let accel = AccelConfig::default();
        let direct = match kind {
            PlatformKind::DaCapo => PlatformRates::dacapo(pair, fps, &accel).unwrap(),
            PlatformKind::OrinHigh => {
                PlatformRates::gpu(GpuDevice::jetson_orin_high(), pair).unwrap()
            }
            PlatformKind::OrinLow => {
                PlatformRates::gpu(GpuDevice::jetson_orin_low(), pair).unwrap()
            }
            PlatformKind::Rtx3090 => PlatformRates::gpu(GpuDevice::rtx_3090(), pair).unwrap(),
        };
        let by_kind = PlatformSpec::Kind(kind).resolve(pair, fps, &accel).unwrap();
        let by_name =
            PlatformSpec::Named(kind.to_string().to_lowercase()).resolve(pair, fps, &accel).unwrap();
        prop_assert_eq!(&direct, &by_kind);
        prop_assert_eq!(&direct, &by_name);
    }

    /// Determinism across APIs: `ClSimulator::run()` and a manually stepped
    /// `Session` built from the same seeded config produce identical
    /// `SimResult`s, for arbitrary scenarios, schedulers, and seeds.
    #[test]
    fn one_shot_run_equals_manually_stepped_session(
        scenario in arbitrary_scenario(),
        scheduler_index in 0usize..4,
        seed in 0u64..1_000_000,
    ) {
        let build = || {
            SimConfig::builder(scenario.clone(), ModelPair::ResNet18Wrn50)
                .platform_rates(fast_platform())
                .scheduler(SchedulerKind::ALL[scheduler_index])
                .measurement(10.0, 10)
                .pretrain_samples(64)
                .seed(seed)
                .build()
                .unwrap()
        };

        let one_shot = ClSimulator::new(build()).unwrap().run().unwrap();

        let mut session = Session::new(build()).unwrap();
        let mut events = 0usize;
        while session.step().unwrap() != SessionEvent::Finished {
            events += 1;
        }
        let stepped = session.into_result();

        prop_assert_eq!(&one_shot, &stepped);
        prop_assert!(
            events >= stepped.phases.len() + stepped.accuracy_timeline.len(),
            "every phase and accuracy sample must surface as an event"
        );
    }
}

/// A stepped `Session` on a name-resolved platform spec matches the
/// enum-built one-shot run exactly: platform selection by registry name is
/// invisible to the engine's numbers.
#[test]
fn spec_built_session_matches_enum_built_run() {
    let scenario = Scenario::from_segments(
        "spec-vs-enum",
        vec![Segment { attributes: SegmentAttributes::default(), duration_s: 60.0 }],
    );
    let build = |platform: PlatformSpec| {
        SimConfig::builder(scenario.clone(), ModelPair::ResNet18Wrn50)
            .platform(platform)
            .scheduler(SchedulerKind::DaCapoSpatiotemporal)
            .measurement(10.0, 15)
            .pretrain_samples(96)
            .build()
            .unwrap()
    };

    let enum_built =
        ClSimulator::new(build(PlatformSpec::Kind(PlatformKind::DaCapo))).unwrap().run().unwrap();

    let mut session = Session::new(build(PlatformSpec::from("dacapo"))).unwrap();
    while session.step().unwrap() != SessionEvent::Finished {}
    let spec_built = session.into_result();

    assert_eq!(enum_built, spec_built);
}
