//! Fleet driver integration: many camera sessions across worker threads,
//! with per-camera determinism guarantees.
//!
//! The key property (the PR's acceptance criterion): a parallel `Fleet` run
//! of eight cameras on distinct scenarios produces per-camera results that
//! are **bit-identical** to running each camera's `Session` alone with the
//! same seed — threading changes wall-clock time, never metrics.

use dacapo_core::platform::{
    self, KernelRate, PlatformProvider, PlatformRequest, PlatformSpec, Sharing,
};
use dacapo_core::{
    ClSimulator, Fleet, PlatformRates, Result, SchedulerKind, Session, SessionEvent, SimConfig,
};
use dacapo_datagen::{Scenario, Segment, SegmentAttributes};
use dacapo_dnn::zoo::ModelPair;
use std::sync::Arc;

/// Fast synthetic platform so the eight debug-mode simulations stay quick.
fn fast_platform() -> PlatformRates {
    PlatformRates::new(
        "fleet-test",
        KernelRate::fp32(90.0),
        KernelRate::fp32(30.0),
        KernelRate::fp32(100.0),
        Sharing::Partitioned { tsa_rows: 12, bsa_rows: 4 },
        2.0,
    )
    .expect("test rates are valid")
}

/// One camera per paper scenario (S1–S6, ES1, ES2), truncated to the first
/// two segments so the whole fleet finishes fast in debug builds, each with
/// its own seed.
fn camera_configs() -> Vec<(String, SimConfig)> {
    Scenario::all()
        .into_iter()
        .enumerate()
        .map(|(i, scenario)| {
            let short = Scenario::from_segments(
                scenario.name().to_string(),
                scenario.segments().iter().copied().take(2).collect(),
            );
            let config = SimConfig::builder(short, ModelPair::ResNet18Wrn50)
                .platform_rates(fast_platform())
                .scheduler(SchedulerKind::DaCapoSpatiotemporal)
                .measurement(10.0, 15)
                .pretrain_samples(96)
                .seed(0xF1EE7 + i as u64)
                .build()
                .expect("camera config builds");
            (format!("cam-{i}-{}", scenario.name()), config)
        })
        .collect()
}

#[test]
fn eight_camera_fleet_is_bit_identical_to_solo_sessions() {
    let configs = camera_configs();
    assert!(configs.len() >= 8, "the paper defines eight scenarios");

    let mut fleet = Fleet::new().threads(4);
    for (name, config) in &configs {
        fleet = fleet.camera(name.clone(), config.clone());
    }
    let fleet_result = fleet.run().expect("fleet runs");
    assert_eq!(fleet_result.cameras.len(), configs.len());

    for (name, config) in configs {
        let solo = ClSimulator::new(config).unwrap().run().unwrap();
        let from_fleet = fleet_result.camera(&name).expect("camera present");
        assert_eq!(from_fleet, &solo, "{name}: fleet result diverged from solo run");
    }
}

#[test]
fn fleet_aggregates_are_consistent_with_per_camera_metrics() {
    let mut fleet = Fleet::new().threads(3);
    for (name, config) in camera_configs().into_iter().take(4) {
        fleet = fleet.camera(name, config);
    }
    let result = fleet.run().expect("fleet runs");

    let accuracies: Vec<f64> = result.cameras.iter().map(|c| c.result.mean_accuracy).collect();
    let mean = accuracies.iter().sum::<f64>() / accuracies.len() as f64;
    assert!((result.mean_accuracy - mean).abs() < 1e-12);
    assert!(result.min_accuracy <= result.p10_accuracy + 1e-12);
    assert!(result.p10_accuracy <= result.p50_accuracy + 1e-12);
    assert!(accuracies.contains(&result.p50_accuracy), "p50 is nearest-rank");
    let energy: f64 = result.cameras.iter().map(|c| c.result.energy_joules).sum();
    assert!((result.total_energy_joules - energy).abs() < 1e-9);
    let drifts: usize = result.cameras.iter().map(|c| c.result.drift_responses).sum();
    assert_eq!(result.total_drift_responses, drifts);
}

#[test]
fn thread_count_never_changes_fleet_results() {
    let configs: Vec<_> = camera_configs().into_iter().take(3).collect();
    let run_with_threads = |threads: usize| {
        let mut fleet = Fleet::new().threads(threads);
        for (name, config) in &configs {
            fleet = fleet.camera(name.clone(), config.clone());
        }
        fleet.run().expect("fleet runs")
    };
    let serial = run_with_threads(1);
    let parallel = run_with_threads(8);
    assert_eq!(serial, parallel);
}

/// A platform defined *outside* `dacapo-core`: no builtin enum variant, only
/// a provider registered at runtime. The rates scale with the requested
/// frame rate to prove the provider sees the full request.
struct TurboSimProvider;

impl PlatformProvider for TurboSimProvider {
    fn name(&self) -> &str {
        "turbo-sim"
    }

    fn build(&self, request: &PlatformRequest<'_>) -> Result<PlatformRates> {
        PlatformRates::new(
            format!("TurboSim ({:.0} FPS headroom)", 3.0 * request.fps),
            KernelRate::fp32(3.0 * request.fps),
            KernelRate::fp32(35.0),
            KernelRate::fp32(110.0),
            Sharing::TimeShared,
            4.0,
        )
    }
}

#[test]
fn out_of_crate_platforms_run_sessions_and_heterogeneous_fleets() {
    platform::register(Arc::new(TurboSimProvider));

    // One short scenario, three cameras on three different platforms
    // selected by registry name: the external provider, the builtin DaCapo
    // accelerator, and a GPU baseline.
    let scenario = Scenario::from_segments(
        "hetero",
        vec![Segment { attributes: SegmentAttributes::default(), duration_s: 60.0 }],
    );
    let camera_platforms = ["turbo-sim", "dacapo", "orin-high"];
    let configs: Vec<(String, SimConfig)> = camera_platforms
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let config = SimConfig::builder(scenario.clone(), ModelPair::ResNet18Wrn50)
                .platform(*name)
                .scheduler(SchedulerKind::DaCapoSpatiotemporal)
                .measurement(10.0, 15)
                .pretrain_samples(96)
                .seed(0xCAFE + i as u64)
                .build()
                .expect("camera config builds");
            (format!("cam-{name}"), config)
        })
        .collect();

    // The external platform steps through a plain Session like any builtin.
    let mut session = Session::new(configs[0].1.clone()).expect("session on custom platform");
    assert_eq!(session.platform().name(), "TurboSim (90 FPS headroom)");
    assert!(session.platform().is_shared());
    while session.step().expect("session steps") != SessionEvent::Finished {}
    let solo_turbo = session.into_result();
    assert!(solo_turbo.system.starts_with("TurboSim"), "{}", solo_turbo.system);
    assert!(solo_turbo.mean_accuracy > 0.1);

    // A heterogeneous fleet mixes all three platforms, and every camera's
    // result is bit-identical to its solo run.
    let mut fleet = Fleet::new().threads(3);
    for (name, config) in &configs {
        fleet = fleet.camera(name.clone(), config.clone());
    }
    let fleet_result = fleet.run().expect("heterogeneous fleet runs");
    let mut system_names = Vec::new();
    for (name, config) in &configs {
        let solo = ClSimulator::new(config.clone()).unwrap().run().unwrap();
        let from_fleet = fleet_result.camera(name).expect("camera present");
        assert_eq!(from_fleet, &solo, "{name}: fleet result diverged from solo run");
        system_names.push(from_fleet.system.clone());
    }
    // The cameras really ran on three distinct platforms.
    system_names.sort();
    system_names.dedup();
    assert_eq!(system_names.len(), camera_platforms.len(), "{system_names:?}");
    // Specs resolve the same platforms the cameras saw.
    assert_eq!(PlatformSpec::from("turbo-sim").kind(), None);
}

#[test]
fn mid_run_session_state_is_observable_while_stepping() {
    // The re-entrant API's reason to exist: interleave two cameras by hand
    // and watch both advance. (The Fleet does this with threads; here we do
    // it cooperatively on one thread.)
    let configs: Vec<_> = camera_configs().into_iter().take(2).collect();
    let mut a = Session::new(configs[0].1.clone()).unwrap();
    let mut b = Session::new(configs[1].1.clone()).unwrap();
    let mut a_done = false;
    let mut b_done = false;
    while !(a_done && b_done) {
        if !a_done && a.step().unwrap() == SessionEvent::Finished {
            a_done = true;
        }
        if !b_done && b.step().unwrap() == SessionEvent::Finished {
            b_done = true;
        }
        assert!(a.now_s() <= a.duration_s() + 1.5);
        assert!(b.now_s() <= b.duration_s() + 1.5);
    }
    let result_a = a.into_result();
    let result_b = b.into_result();
    // Interleaving per-camera stepping must equal solo runs too.
    let solo_a = ClSimulator::new(configs[0].1.clone()).unwrap().run().unwrap();
    let solo_b = ClSimulator::new(configs[1].1.clone()).unwrap().run().unwrap();
    assert_eq!(result_a, solo_a);
    assert_eq!(result_b, solo_b);
}
