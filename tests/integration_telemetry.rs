//! Telemetry integration: a null-sink recorder is bit-identical to a
//! telemetry-free run (proptested), trace and metrics files are
//! byte-identical across worker-thread counts, a mid-run snapshot/restore
//! reproduces the same tail of the camera metrics timeseries, and the
//! catch-all `on_event` hook sees exactly the events the typed hooks see.

use dacapo::telemetry::sink::TelemetrySink;
use dacapo::telemetry::{MetricsRecord, TelemetryRecorder};
use dacapo_core::platform::{KernelRate, PlatformRates, Sharing};
use dacapo_core::{
    ChurnPlan, Cluster, EdgeConfig, SchedulerKind, Session, SessionEvent, SimConfig, SimObserver,
};
use dacapo_datagen::{Scenario, Segment, SegmentAttributes};
use dacapo_dnn::zoo::ModelPair;
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

/// Fast synthetic platform so the many debug-mode simulations stay quick.
fn fast_platform() -> PlatformRates {
    PlatformRates::new(
        "telemetry-test",
        KernelRate::fp32(90.0),
        KernelRate::fp32(30.0),
        KernelRate::fp32(100.0),
        Sharing::Partitioned { tsa_rows: 12, bsa_rows: 4 },
        2.0,
    )
    .expect("test rates are valid")
}

/// A short scenario with one label-distribution drift halfway through.
fn drifting_scenario(total_s: f64) -> Scenario {
    let first = SegmentAttributes::default();
    let second = SegmentAttributes { labels: dacapo_datagen::LabelDistribution::All, ..first };
    Scenario::try_from_segments(
        "telemetry",
        vec![
            Segment { attributes: first, duration_s: total_s / 2.0 },
            Segment { attributes: second, duration_s: total_s / 2.0 },
        ],
    )
    .expect("test scenario is valid")
}

fn camera_config(seed: u64, duration_s: f64, edge: bool) -> SimConfig {
    let mut builder = SimConfig::builder(drifting_scenario(duration_s), ModelPair::ResNet18Wrn50)
        .platform_rates(fast_platform())
        .scheduler(SchedulerKind::DaCapoSpatiotemporal)
        .measurement(10.0, 8)
        .pretrain_samples(48)
        .seed(seed);
    if edge {
        builder = builder.edge(EdgeConfig::new("broadband"));
    }
    builder.build().expect("camera config builds")
}

/// A cluster exercising every hook family: shared accelerators, label
/// sharing, churn (join, leave, drain), and edge offload.
fn busy_cluster(cameras: usize, seed: u64, threads: usize) -> Cluster {
    let mut cluster = Cluster::new(2)
        .arbiter("fair-share")
        .share("broadcast")
        .share_window_s(15.0)
        .offload("cloud-only")
        .churn(
            ChurnPlan::new()
                .join(16.0, "joiner", camera_config(seed ^ 0xACE, 30.0, true))
                .leave(30.0, "cam-0")
                .drain(31.0, 1),
        )
        .threads(threads);
    for i in 0..cameras {
        cluster = cluster
            .camera(format!("cam-{i}"), camera_config(seed.wrapping_add(i as u64), 45.0, true));
    }
    cluster
}

/// A test sink capturing everything it receives in shared vectors.
struct CaptureSink {
    traces: Arc<Mutex<Vec<String>>>,
    records: Arc<Mutex<Vec<String>>>,
}

impl TelemetrySink for CaptureSink {
    fn name(&self) -> &str {
        "capture"
    }

    fn on_trace_event(
        &mut self,
        event: &dacapo::telemetry::TraceEvent,
    ) -> Result<(), dacapo::telemetry::TelemetryError> {
        self.traces.lock().expect("no poisoned locks in tests").push(event.to_json());
        Ok(())
    }

    fn on_metrics_record(
        &mut self,
        record: &MetricsRecord,
    ) -> Result<(), dacapo::telemetry::TelemetryError> {
        self.records.lock().expect("no poisoned locks in tests").push(record.to_json_line());
        Ok(())
    }
}

type Captured = (Arc<Mutex<Vec<String>>>, Arc<Mutex<Vec<String>>>);

fn capturing_recorder() -> (TelemetryRecorder, Captured) {
    let traces = Arc::new(Mutex::new(Vec::new()));
    let records = Arc::new(Mutex::new(Vec::new()));
    let sink = CaptureSink { traces: Arc::clone(&traces), records: Arc::clone(&records) };
    (TelemetryRecorder::new().with_sink(Box::new(sink)), (traces, records))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The ISSUE's fast-path property: observing a run through a recorder
    /// whose only configured sink is the reserved `null` sink produces the
    /// exact `ClusterResult` of a telemetry-free run — fleet, contention,
    /// share, churn, and edge metrics alike.
    #[test]
    fn null_sink_observed_runs_are_bit_identical_to_plain_runs(
        cameras in 2usize..4,
        seed in 0u64..1_000,
        threads in 1usize..4,
    ) {
        let plain = busy_cluster(cameras, seed, threads).run().expect("plain run");
        let mut recorder =
            TelemetryRecorder::new().with_sink_spec("null").expect("null spec is reserved");
        prop_assert!(!recorder.is_enabled());
        let observed = busy_cluster(cameras, seed, threads)
            .run_with(&mut recorder)
            .expect("null-observed run");
        prop_assert_eq!(plain, observed);
        let summary = recorder.finish().expect("disabled recorder finishes");
        prop_assert_eq!(summary.trace_events, 0);
        prop_assert_eq!(summary.metrics_records, 0);
    }
}

/// The trace-determinism acceptance criterion: the same cluster traced at
/// 1, 2, and 8 worker threads produces byte-identical chrome-trace and
/// json-lines files.
#[test]
fn trace_and_metrics_files_are_byte_identical_across_thread_counts() {
    let dir = std::env::temp_dir().join("dacapo_telemetry_threads_test");
    std::fs::create_dir_all(&dir).expect("temp dir is writable");
    let mut outputs = Vec::new();
    for threads in [1usize, 2, 8] {
        let trace_path = dir.join(format!("trace_{threads}.json"));
        let metrics_path = dir.join(format!("metrics_{threads}.jsonl"));
        let mut recorder = TelemetryRecorder::new()
            .with_sink_spec(&format!("chrome-trace:{}", trace_path.display()))
            .and_then(|r| r.with_sink_spec(&format!("json-lines:{}", metrics_path.display())))
            .expect("builtin sink specs parse");
        let result =
            busy_cluster(3, 7, threads).run_with(&mut recorder).expect("traced run completes");
        let summary = recorder.finish().expect("sinks flush");
        assert!(summary.trace_events > 0, "threads={threads} recorded no trace events");
        assert!(summary.metrics_records > 0, "threads={threads} recorded no metrics");
        let trace = std::fs::read(&trace_path).expect("trace file written");
        let metrics = std::fs::read(&metrics_path).expect("metrics file written");
        outputs.push((threads, result, trace, metrics));
    }
    let (_, result_1, trace_1, metrics_1) = &outputs[0];
    for (threads, result, trace, metrics) in &outputs[1..] {
        assert_eq!(result, result_1, "results diverged at {threads} threads");
        assert_eq!(trace, trace_1, "trace bytes diverged at {threads} threads");
        assert_eq!(metrics, metrics_1, "metrics bytes diverged at {threads} threads");
    }
}

/// The snapshot-parity criterion for telemetry: restore a session from a
/// mid-run snapshot and record its remainder — every camera-window record
/// for windows after the snapshot point matches the same windows from an
/// uninterrupted recorded run.
#[test]
fn restored_sessions_reproduce_the_metrics_timeseries_tail() {
    let window_s = 10.0;
    let camera_records = |records: &Arc<Mutex<Vec<String>>>| -> Vec<String> {
        records
            .lock()
            .expect("no poisoned locks in tests")
            .iter()
            .filter(|line| line.contains("\"kind\":\"camera\""))
            .cloned()
            .collect()
    };

    // Uninterrupted recorded run.
    let (mut full_recorder, (_, full_records)) = capturing_recorder();
    full_recorder = full_recorder.window_s(window_s);
    let mut session = Session::new(camera_config(11, 60.0, false)).expect("session builds");
    session.run_with(&mut full_recorder).expect("full run completes");
    let expected = session.into_result();
    full_recorder.finish().expect("full recorder finishes");
    let full_camera = camera_records(&full_records);
    assert!(full_camera.len() > 2, "run too short to have a tail: {full_camera:?}");

    // Same config: step partway (unobserved), snapshot, restore, record the
    // remainder.
    let mut session = Session::new(camera_config(11, 60.0, false)).expect("session builds");
    while session.now_s() < 25.0 && !session.is_finished() {
        session.step().expect("step succeeds");
    }
    let snapshot_s = session.now_s();
    let snapshot = session.snapshot();
    let mut restored = Session::restore(snapshot).expect("snapshot restores");
    let (mut tail_recorder, (_, tail_records)) = capturing_recorder();
    tail_recorder = tail_recorder.window_s(window_s);
    restored.run_with(&mut tail_recorder).expect("restored run completes");
    assert_eq!(restored.into_result(), expected, "restored run diverged");
    tail_recorder.finish().expect("tail recorder finishes");
    let tail_camera = camera_records(&tail_records);

    // Windows that begin strictly after the snapshot aggregate only
    // post-snapshot events, so the two recordings must agree on them.
    let first_clean_window = (snapshot_s / window_s).floor() as usize + 1;
    let clean = |records: &[String]| -> Vec<String> {
        records
            .iter()
            .filter(|line| {
                (first_clean_window..first_clean_window + 100)
                    .any(|w| line.contains(&format!("\"window\":{w},")))
            })
            .cloned()
            .collect()
    };
    let expected_tail = clean(&full_camera);
    assert!(!expected_tail.is_empty(), "no windows after the snapshot at {snapshot_s}s");
    assert_eq!(clean(&tail_camera), expected_tail, "metrics tail diverged after restore");
}

/// An observer counting both the catch-all `on_event` hook and every typed
/// event hook.
#[derive(Default)]
struct Counting {
    events: usize,
    phases: usize,
    drifts: usize,
    accuracies: usize,
    finishes: usize,
    barriers: usize,
    window_samples: usize,
    accelerator_samples: usize,
    shares: usize,
    routes: usize,
    joins: usize,
    leaves: usize,
    drains: usize,
    migrations: usize,
    uplinks: usize,
}

impl SimObserver for Counting {
    fn on_event(&mut self, event: &SessionEvent) {
        self.events += 1;
        // The catch-all must stay exhaustive: new variants break this match
        // at compile time, which is exactly the regression guard.
        match event {
            SessionEvent::Phase(_)
            | SessionEvent::Drift { .. }
            | SessionEvent::Accuracy { .. }
            | SessionEvent::Finished => {}
        }
    }
    fn on_phase(&mut self, _phase: &dacapo_core::PhaseRecord) {
        self.phases += 1;
    }
    fn on_drift(&mut self, _at_s: f64, _response_index: usize) {
        self.drifts += 1;
    }
    fn on_accuracy(&mut self, _at_s: f64, _accuracy: f64) {
        self.accuracies += 1;
    }
    fn on_finished(&mut self) {
        self.finishes += 1;
    }
    fn on_window_barrier(&mut self, _window_index: usize, _boundary_s: f64) {
        self.barriers += 1;
    }
    fn on_window_sample(&mut self, _sample: &dacapo_core::WindowSample<'_>) {
        self.window_samples += 1;
    }
    fn on_accelerator_sample(&mut self, _sample: &dacapo_core::AcceleratorSample) {
        self.accelerator_samples += 1;
    }
    fn on_share(&mut self, _exporter: &str, _importer: &str, _admitted: usize, _boundary_s: f64) {
        self.shares += 1;
    }
    fn on_offload_route(
        &mut self,
        _camera: &str,
        _route: dacapo_core::LabelRoute,
        _window_index: usize,
        _boundary_s: f64,
    ) {
        self.routes += 1;
    }
    fn on_churn_join(&mut self, _camera: &str, _accelerator: Option<usize>, _at_s: f64) {
        self.joins += 1;
    }
    fn on_churn_leave(&mut self, _camera: &str, _at_s: f64) {
        self.leaves += 1;
    }
    fn on_churn_drain(&mut self, _accelerator: usize, _at_s: f64) {
        self.drains += 1;
    }
    fn on_migration(
        &mut self,
        _camera: &str,
        _from_accelerator: usize,
        _to_accelerator: Option<usize>,
        _at_s: f64,
    ) {
        self.migrations += 1;
    }
    fn on_uplink_transfer(&mut self, _camera: &str, _at_s: f64, _bytes: u64, _labels: usize) {
        self.uplinks += 1;
    }
}

/// The `forward()` regression guard: the catch-all `on_event` hook fires
/// exactly once per typed session event, and every barrier-time hook family
/// fires on a cluster built to exercise it.
#[test]
fn catch_all_hook_matches_typed_hooks_and_every_family_fires() {
    let mut counting = Counting::default();
    busy_cluster(3, 3, 1).run_with(&mut counting).expect("observed run completes");
    assert_eq!(
        counting.events,
        counting.phases + counting.drifts + counting.accuracies + counting.finishes,
        "on_event must fire exactly once per typed session event",
    );
    assert!(counting.events > 0);
    assert!(counting.phases > 0);
    assert!(counting.accuracies > 0);
    assert!(counting.finishes > 0, "every camera run emits a Finished event");
    assert!(counting.barriers > 0, "observed cluster runs take the windowed path");
    assert!(counting.window_samples > 0);
    assert!(counting.accelerator_samples > 0);
    assert!(counting.shares > 0, "broadcast sharing admits labels");
    assert!(counting.routes > 0, "cloud-only offload routes every camera");
    assert_eq!(counting.joins, 1, "the churn plan schedules one join");
    assert_eq!(counting.leaves, 1, "the churn plan schedules one leave");
    assert_eq!(counting.drains, 1, "the churn plan schedules one drain");
    assert!(counting.uplinks > 0, "cloud labeling ships bytes on the uplink");
}
